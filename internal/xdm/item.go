// Package xdm implements the XQuery Data Model (XDM) subset required by
// the XRPC reproduction: atomic values, nodes, sequences, document order,
// atomization, effective boolean value, and XML serialization.
//
// Every XQuery expression evaluates to a Sequence of Items. An Item is
// either an atomic value (xs:string, xs:integer, xs:decimal, xs:double,
// xs:boolean, xs:untypedAtomic) or a Node (document, element, attribute,
// text, comment, processing-instruction).
package xdm

import (
	"fmt"
	"strings"
)

// Item is a single XDM item: an atomic value or a node.
type Item interface {
	// StringValue returns the string value of the item as defined by
	// the XDM (fn:string semantics).
	StringValue() string
	// TypeName returns the XML Schema type name for atomic values
	// (e.g. "xs:integer") or a node-kind name for nodes.
	TypeName() string
	isItem()
}

// Sequence is an ordered sequence of items. The empty sequence is
// represented by an empty (or nil) slice. A single item and the singleton
// sequence containing it are interchangeable, per the XDM.
type Sequence []Item

// Empty reports whether the sequence is the empty sequence.
func (s Sequence) Empty() bool { return len(s) == 0 }

// Singleton wraps one item into a sequence.
func Singleton(it Item) Sequence { return Sequence{it} }

// Concat concatenates sequences in order.
func Concat(seqs ...Sequence) Sequence {
	n := 0
	for _, s := range seqs {
		n += len(s)
	}
	out := make(Sequence, 0, n)
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// StringJoin joins the string values of all items with sep.
func (s Sequence) StringJoin(sep string) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.StringValue()
	}
	return strings.Join(parts, sep)
}

// String renders the sequence for debugging: items joined by ", " inside
// parentheses.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		switch v := it.(type) {
		case String:
			parts[i] = fmt.Sprintf("%q", string(v))
		case *Node:
			parts[i] = v.debugString()
		default:
			parts[i] = it.StringValue()
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Atomize applies fn:data to every item in the sequence: atomic values
// pass through, nodes are converted to their typed value (untypedAtomic
// for the node string value in this implementation, matching untyped
// documents).
func Atomize(s Sequence) Sequence {
	out := make(Sequence, 0, len(s))
	for _, it := range s {
		switch v := it.(type) {
		case *Node:
			out = append(out, Untyped(v.StringValue()))
		default:
			out = append(out, it)
		}
	}
	return out
}

// EffectiveBoolean computes the effective boolean value of a sequence per
// XQuery 1.0 §2.4.3. It returns an error (err:FORG0006) for sequences that
// have no effective boolean value.
func EffectiveBoolean(s Sequence) (bool, error) {
	if len(s) == 0 {
		return false, nil
	}
	if _, isNode := s[0].(*Node); isNode {
		return true, nil
	}
	if len(s) > 1 {
		return false, NewError("FORG0006", "effective boolean value of a sequence of more than one atomic item")
	}
	switch v := s[0].(type) {
	case Boolean:
		return bool(v), nil
	case String:
		return len(v) > 0, nil
	case Untyped:
		return len(v) > 0, nil
	case Integer:
		return v != 0, nil
	case Decimal:
		return v != 0, nil
	case Double:
		return v == v && v != 0, nil // NaN -> false
	default:
		return false, NewError("FORG0006", "no effective boolean value for "+s[0].TypeName())
	}
}

// Error is an XQuery dynamic or type error carrying a W3C-style error
// code (e.g. XPTY0004) and a human-readable description.
type Error struct {
	Code string
	Msg  string
}

// NewError builds an *Error with the given code and message.
func NewError(code, msg string) *Error { return &Error{Code: code, Msg: msg} }

// Errorf builds an *Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

func (e *Error) Error() string { return "err:" + e.Code + " " + e.Msg }

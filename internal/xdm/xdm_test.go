package xdm

import (
	"strings"
	"testing"
	"testing/quick"
)

const filmDB = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>`

func mustParse(t *testing.T, text string) *Node {
	t.Helper()
	doc, err := ParseDocument("test.xml", text)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	return doc
}

func TestParseRoundTrip(t *testing.T) {
	doc := mustParse(t, `<a x="1"><b>hi</b><c/><!--note--><?go run?></a>`)
	got := SerializeNode(doc)
	want := `<a x="1"><b>hi</b><c/><!--note--><?go run?></a>`
	if got != want {
		t.Errorf("serialize = %q, want %q", got, want)
	}
}

func TestParseWhitespaceOutsideRoot(t *testing.T) {
	doc := mustParse(t, "\n  <a/>\n")
	if len(doc.Children) != 1 || doc.Children[0].Name != "a" {
		t.Fatalf("children = %v", doc.Children)
	}
}

func TestParseUnbalanced(t *testing.T) {
	if _, err := ParseDocument("x", "<a><b></a>"); err == nil {
		t.Fatal("expected error for unbalanced XML")
	}
}

func TestParseNamespacePrefixKept(t *testing.T) {
	doc := mustParse(t, `<xrpc:request xmlns:xrpc="http://monetdb.cwi.nl/XQuery" xrpc:module="films"/>`)
	el := doc.Children[0]
	if el.Name != "xrpc:request" {
		t.Errorf("element name = %q, want xrpc:request", el.Name)
	}
	if v, ok := el.Attr("xrpc:module"); !ok || v != "films" {
		t.Errorf("attr = %q, %v", v, ok)
	}
}

func TestStringValueConcatenation(t *testing.T) {
	doc := mustParse(t, `<p>a<b>b</b>c</p>`)
	if got := doc.StringValue(); got != "abc" {
		t.Errorf("StringValue = %q, want abc", got)
	}
}

func TestAxes(t *testing.T) {
	doc := mustParse(t, filmDB)
	films := Step(doc, AxisChild, NodeTest{Name: "films"})
	if len(films) != 1 {
		t.Fatalf("child::films = %d nodes", len(films))
	}
	all := Step(doc, AxisDescendant, NodeTest{Name: "film"})
	if len(all) != 3 {
		t.Fatalf("descendant::film = %d nodes, want 3", len(all))
	}
	names := Step(all[0], AxisChild, NodeTest{Name: "name"})
	if len(names) != 1 || names[0].StringValue() != "The Rock" {
		t.Fatalf("first film name = %v", names)
	}
	// parent axis
	parents := Step(names[0], AxisParent, NodeTest{KindTest: true, AnyKind: true})
	if len(parents) != 1 || parents[0] != all[0] {
		t.Fatalf("parent = %v", parents)
	}
	// following-sibling of first film
	fs := Step(all[0], AxisFollowingSibling, NodeTest{Name: "film"})
	if len(fs) != 2 {
		t.Fatalf("following-sibling = %d, want 2", len(fs))
	}
	ps := Step(all[2], AxisPrecedingSibling, NodeTest{Name: "film"})
	if len(ps) != 2 {
		t.Fatalf("preceding-sibling = %d, want 2", len(ps))
	}
	anc := Step(names[0], AxisAncestor, NodeTest{KindTest: true, AnyKind: true})
	if len(anc) != 3 { // film, films, document
		t.Fatalf("ancestors = %d, want 3", len(anc))
	}
}

func TestFollowingPrecedingAxes(t *testing.T) {
	doc := mustParse(t, `<r><a><a1/></a><b/><c><c1/></c></r>`)
	b := Step(doc, AxisDescendant, NodeTest{Name: "b"})[0]
	foll := Step(b, AxisFollowing, NodeTest{KindTest: true, AnyKind: true})
	if len(foll) != 2 { // c, c1
		t.Fatalf("following = %d nodes, want 2", len(foll))
	}
	prec := Step(b, AxisPreceding, NodeTest{KindTest: true, AnyKind: true})
	if len(prec) != 2 { // a1, a (reverse order)
		t.Fatalf("preceding = %d nodes, want 2", len(prec))
	}
	if prec[0].Name != "a1" || prec[1].Name != "a" {
		t.Fatalf("preceding order = %s,%s", prec[0].Name, prec[1].Name)
	}
}

func TestAttributeAxis(t *testing.T) {
	doc := mustParse(t, `<person id="p7" name="x"/>`)
	p := doc.Children[0]
	attrs := Step(p, AxisAttribute, NodeTest{Name: "id"})
	if len(attrs) != 1 || attrs[0].Value != "p7" {
		t.Fatalf("@id = %v", attrs)
	}
	wild := Step(p, AxisAttribute, NodeTest{Name: "*"})
	if len(wild) != 2 {
		t.Fatalf("@* = %d, want 2", len(wild))
	}
	// name tests never match attributes on the child axis
	if got := Step(p, AxisChild, NodeTest{Name: "id"}); len(got) != 0 {
		t.Fatalf("child::id matched attribute: %v", got)
	}
}

func TestDocOrderAndDedup(t *testing.T) {
	doc := mustParse(t, filmDB)
	films := Step(doc, AxisDescendant, NodeTest{Name: "film"})
	shuffled := []*Node{films[2], films[0], films[1], films[0]}
	sorted := SortDocOrderDedup(shuffled)
	if len(sorted) != 3 {
		t.Fatalf("dedup left %d nodes", len(sorted))
	}
	for i := range sorted {
		if sorted[i] != films[i] {
			t.Fatalf("order mismatch at %d", i)
		}
	}
}

func TestCloneFreshIdentityStableOrds(t *testing.T) {
	doc := mustParse(t, filmDB)
	film := Step(doc, AxisDescendant, NodeTest{Name: "film"})[1]
	c := film.Clone()
	if c.TreeID() == film.TreeID() {
		t.Error("clone shares tree identity")
	}
	if c.Parent != nil {
		t.Error("clone has a parent; upward axes must be empty (call-by-value)")
	}
	if up := Step(c, AxisParent, NodeTest{KindTest: true, AnyKind: true}); len(up) != 0 {
		t.Errorf("parent of clone = %v, want empty", up)
	}
	if !DeepEqual(Sequence{film}, Sequence{c}) {
		t.Error("clone not deep-equal to original")
	}
}

func TestFindByOrd(t *testing.T) {
	doc := mustParse(t, filmDB)
	names := Step(doc, AxisDescendant, NodeTest{Name: "name"})
	for _, n := range names {
		if got := doc.FindByOrd(n.Ord()); got != n {
			t.Fatalf("FindByOrd(%d) = %v, want %v", n.Ord(), got, n)
		}
	}
	// clone preserves ords
	c := doc.Children[0].Clone()
	orig := Step(doc.Children[0], AxisDescendant, NodeTest{Name: "actor"})[0]
	cl := c.FindByOrd(orig.Ord() - doc.Children[0].Ord())
	_ = cl // ords are root-relative only when cloned from root; check full-doc clone below
	full := docCloneViaSerialize(t, doc)
	o2 := Step(full, AxisDescendant, NodeTest{Name: "actor"})[0]
	if o2.StringValue() != orig.StringValue() {
		t.Fatalf("clone content mismatch: %q vs %q", o2.StringValue(), orig.StringValue())
	}
}

func docCloneViaSerialize(t *testing.T, doc *Node) *Node {
	t.Helper()
	return mustParse(t, SerializeNode(doc))
}

func TestEffectiveBoolean(t *testing.T) {
	cases := []struct {
		seq  Sequence
		want bool
		err  bool
	}{
		{Sequence{}, false, false},
		{Sequence{Boolean(true)}, true, false},
		{Sequence{Boolean(false)}, false, false},
		{Sequence{String("")}, false, false},
		{Sequence{String("x")}, true, false},
		{Sequence{Integer(0)}, false, false},
		{Sequence{Integer(3)}, true, false},
		{Sequence{Double(0)}, false, false},
		{Sequence{Untyped("y")}, true, false},
		{Sequence{Integer(1), Integer(2)}, false, true},
	}
	for i, c := range cases {
		got, err := EffectiveBoolean(c.seq)
		if (err != nil) != c.err {
			t.Errorf("case %d: err = %v", i, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("case %d: got %v, want %v", i, got, c.want)
		}
	}
	doc := mustParse(t, "<a/>")
	if got, _ := EffectiveBoolean(Sequence{doc, Integer(1)}); !got {
		t.Error("node-first sequence should be true")
	}
}

func TestCastAtomic(t *testing.T) {
	if v, err := CastAtomic(String(" 42 "), "xs:integer"); err != nil || v.(Integer) != 42 {
		t.Errorf("cast ' 42 ' to integer = %v, %v", v, err)
	}
	if v, err := CastAtomic(Untyped("3.5"), "xs:double"); err != nil || v.(Double) != 3.5 {
		t.Errorf("cast untyped 3.5 = %v, %v", v, err)
	}
	if _, err := CastAtomic(String("abc"), "xs:integer"); err == nil {
		t.Error("expected cast error for abc->integer")
	}
	if v, err := CastAtomic(Integer(1), "xs:boolean"); err != nil || v.(Boolean) != true {
		t.Errorf("cast 1 to boolean = %v, %v", v, err)
	}
	if v, err := CastAtomic(Double(2.9), "xs:integer"); err != nil || v.(Integer) != 2 {
		t.Errorf("cast 2.9 to integer = %v, %v", v, err)
	}
	if v, err := CastAtomic(Boolean(true), "xs:string"); err != nil || v.(String) != "true" {
		t.Errorf("cast true to string = %v, %v", v, err)
	}
}

func TestCompareAtomicPromotion(t *testing.T) {
	ok, err := CompareAtomic(Integer(2), Double(2.0), OpEq)
	if err != nil || !ok {
		t.Errorf("2 eq 2.0: %v, %v", ok, err)
	}
	ok, err = CompareAtomic(Untyped("10"), Integer(9), OpGt)
	if err != nil || !ok {
		t.Errorf("untyped 10 gt 9: %v, %v", ok, err)
	}
	ok, err = CompareAtomic(Untyped("abc"), String("abd"), OpLt)
	if err != nil || !ok {
		t.Errorf("untyped abc lt abd: %v, %v", ok, err)
	}
	if _, err = CompareAtomic(String("x"), Integer(1), OpEq); err == nil {
		t.Error("expected type error comparing string with integer")
	}
}

func TestGeneralCompareExistential(t *testing.T) {
	a := Sequence{Integer(1), Integer(5)}
	b := Sequence{Integer(5), Integer(9)}
	ok, err := GeneralCompare(a, b, OpEq)
	if err != nil || !ok {
		t.Errorf("(1,5) = (5,9): %v, %v", ok, err)
	}
	ok, _ = GeneralCompare(a, Sequence{}, OpEq)
	if ok {
		t.Error("comparison with empty sequence must be false")
	}
	// node atomization in general comparison
	doc := mustParse(t, "<n>5</n>")
	ok, err = GeneralCompare(Sequence{doc.Children[0]}, Sequence{Integer(5)}, OpEq)
	if err != nil || !ok {
		t.Errorf("<n>5</n> = 5: %v, %v", ok, err)
	}
}

func TestSerializeSequenceSpacing(t *testing.T) {
	s := Sequence{Integer(1), Integer(2), String("x")}
	if got := SerializeSequence(s); got != "1 2 x" {
		t.Errorf("got %q", got)
	}
	doc := mustParse(t, "<a/>")
	s = Sequence{Integer(1), doc.Children[0], Integer(2)}
	if got := SerializeSequence(s); got != "1<a/>2" {
		t.Errorf("got %q", got)
	}
}

func TestSerializeEscaping(t *testing.T) {
	el := NewElement("e")
	el.SetAttr(NewAttribute("a", `x<"&`))
	el.AppendChild(NewText("a<b&c>d"))
	el.Seal()
	got := SerializeNode(el)
	want := `<e a="x&lt;&quot;&amp;">a&lt;b&amp;c&gt;d</e>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
	back, err := ParseFragment(got)
	if err != nil || len(back) != 1 {
		t.Fatalf("reparse: %v", err)
	}
	if !DeepEqual(Sequence{el}, Sequence{back[0]}) {
		t.Error("escape round-trip not deep-equal")
	}
}

func TestDeepEqual(t *testing.T) {
	a := mustParse(t, `<x p="1" q="2"><y>t</y></x>`)
	b := mustParse(t, `<x q="2" p="1"><y>t</y></x>`) // attribute order irrelevant
	if !DeepEqual(Sequence{a}, Sequence{b}) {
		t.Error("attribute order should not affect deep-equal")
	}
	c := mustParse(t, `<x p="1" q="2"><y>u</y></x>`)
	if DeepEqual(Sequence{a}, Sequence{c}) {
		t.Error("different text should not be deep-equal")
	}
	if !DeepEqual(Sequence{Integer(3)}, Sequence{Double(3)}) {
		t.Error("3 and 3.0 are deep-equal")
	}
	if DeepEqual(Sequence{Integer(3)}, Sequence{Integer(3), Integer(3)}) {
		t.Error("length mismatch must not be deep-equal")
	}
}

func TestAtomize(t *testing.T) {
	doc := mustParse(t, "<a>7</a>")
	got := Atomize(Sequence{doc.Children[0], Integer(1)})
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	if _, ok := got[0].(Untyped); !ok {
		t.Errorf("atomized node type = %T, want Untyped", got[0])
	}
	if got[0].StringValue() != "7" {
		t.Errorf("value = %q", got[0].StringValue())
	}
}

func TestNumberFormatting(t *testing.T) {
	cases := map[Item]string{
		Integer(42):    "42",
		Double(2.5):    "2.5",
		Double(3):      "3",
		Decimal(1.25):  "1.25",
		Boolean(true):  "true",
		Boolean(false): "false",
	}
	for it, want := range cases {
		if got := it.StringValue(); got != want {
			t.Errorf("%v StringValue = %q, want %q", it, got, want)
		}
	}
}

// Property: parse∘serialize is the identity on serialized trees.
func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(texts []string) bool {
		el := NewElement("r")
		for i, s := range texts {
			child := NewElement("c")
			// restrict to a predictable alphabet: the property under test
			// is structural round-tripping (escaping, nesting), not the
			// stdlib's Unicode policy.
			// \t and \n are excluded because XML attribute-value
			// normalization rewrites them to spaces on reparse.
			clean := strings.Map(func(r rune) rune {
				if r >= 0x20 && r < 0x7F {
					return r
				}
				return 'a' + (r % 26)
			}, s)
			if clean != "" { // an empty text node is not representable in XML
				child.AppendChild(NewText(clean))
			}
			if i%2 == 0 {
				child.SetAttr(NewAttribute("k", clean))
			}
			el.AppendChild(child)
		}
		el.Seal()
		out := SerializeNode(el)
		back, err := ParseFragment(out)
		if err != nil || len(back) != 1 {
			return false
		}
		return SerializeNode(back[0]) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: document order is a strict total order over all nodes of a tree.
func TestQuickDocOrderTotal(t *testing.T) {
	doc := mustParse(t, filmDB)
	var nodes []*Node
	nodes = append(nodes, doc)
	nodes = append(nodes, Step(doc, AxisDescendant, NodeTest{KindTest: true, AnyKind: true})...)
	for i, a := range nodes {
		for j, b := range nodes {
			less, greater := DocOrderLess(a, b), DocOrderLess(b, a)
			if i == j && (less || greater) {
				t.Fatalf("node not equal to itself in order")
			}
			if i != j && less == greater {
				t.Fatalf("order not antisymmetric for %d,%d", i, j)
			}
		}
	}
}

func TestEmptyTextMerging(t *testing.T) {
	doc := mustParse(t, "<a>one&amp;two</a>")
	if n := len(doc.Children[0].Children); n != 1 {
		t.Fatalf("adjacent text not merged: %d children", n)
	}
	if got := doc.StringValue(); got != "one&two" {
		t.Errorf("entity decode = %q", got)
	}
}

package xdm

import (
	"strings"
)

// XMLWriter is the sink WriteNode streams XML text into. Both
// strings.Builder and the soap package's pooled wire encoder satisfy it;
// implementations must not fail (the returned errors exist only to match
// the io.StringWriter/io.ByteWriter signatures and are ignored).
type XMLWriter interface {
	WriteString(s string) (int, error)
	WriteByte(c byte) error
}

// SerializeNode renders a node as XML text, the XRPC wire representation
// of node-typed values.
func SerializeNode(n *Node) string {
	var b strings.Builder
	writeNode(&b, n)
	return b.String()
}

// WriteNode streams the XML serialization of n into w without building
// intermediate strings — the zero-copy path the SOAP wire encoder uses
// for node-typed parameters and results.
func WriteNode(w XMLWriter, n *Node) { writeNode(w, n) }

// SerializeSequence renders an XDM sequence the way fn:serialize /
// MonetDB result serialization does: nodes as XML, atomics as string
// values, adjacent atomics separated by a single space.
func SerializeSequence(s Sequence) string {
	var b strings.Builder
	prevAtomic := false
	for _, it := range s {
		if n, isNode := it.(*Node); isNode {
			writeNode(&b, n)
			prevAtomic = false
			continue
		}
		if prevAtomic {
			b.WriteByte(' ')
		}
		b.WriteString(it.StringValue())
		prevAtomic = true
	}
	return b.String()
}

func writeNode(b XMLWriter, n *Node) {
	switch n.Kind {
	case DocumentNode:
		for _, c := range n.Children {
			writeNode(b, c)
		}
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Name)
		for _, a := range n.Attrs {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			escapeAttr(b, a.Value)
			b.WriteByte('"')
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteByte('>')
		for _, c := range n.Children {
			writeNode(b, c)
		}
		b.WriteString("</")
		b.WriteString(n.Name)
		b.WriteByte('>')
	case TextNode:
		escapeText(b, n.Value)
	case AttributeNode:
		// A bare attribute serializes as name="value" (only legal inside
		// the XRPC <attribute> wrapper).
		b.WriteString(n.Name)
		b.WriteString(`="`)
		escapeAttr(b, n.Value)
		b.WriteByte('"')
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Value)
		b.WriteString("-->")
	case PINode:
		b.WriteString("<?")
		b.WriteString(n.Name)
		if n.Value != "" {
			b.WriteByte(' ')
			b.WriteString(n.Value)
		}
		b.WriteString("?>")
	}
}

// escapeText writes s with text-content escaping. It scans bytes and
// copies maximal clean chunks in one WriteString; all escaped characters
// are ASCII, so multi-byte runes pass through inside chunks untouched.
func escapeText(b XMLWriter, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '&':
			rep = "&amp;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(rep)
		last = i + 1
	}
	b.WriteString(s[last:])
}

// EscapeAttr writes s with attribute-value escaping — the one
// authoritative escaping table for every attribute the wire format
// emits (node serialization here, envelope headers in the soap
// package). Besides the markup characters it escapes
// tab/newline/carriage-return as character references: literal
// attribute whitespace is normalized to spaces by conforming XML
// parsers, so leaving it raw would not round-trip.
func EscapeAttr(b XMLWriter, s string) { escapeAttr(b, s) }

func escapeAttr(b XMLWriter, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '<':
			rep = "&lt;"
		case '&':
			rep = "&amp;"
		case '"':
			rep = "&quot;"
		case '\n':
			rep = "&#xA;"
		case '\r':
			rep = "&#xD;"
		case '\t':
			rep = "&#x9;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(rep)
		last = i + 1
	}
	b.WriteString(s[last:])
}

// DeepEqual implements fn:deep-equal over two sequences: pairwise equal
// atomics (by value comparison) and structurally equal nodes (name,
// kind, attributes as a set, children in order; comments/PIs ignored at
// element level per spec).
func DeepEqual(a, b Sequence) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		an, aIsNode := a[i].(*Node)
		bn, bIsNode := b[i].(*Node)
		if aIsNode != bIsNode {
			return false
		}
		if aIsNode {
			if !deepEqualNode(an, bn) {
				return false
			}
			continue
		}
		eq, err := CompareAtomic(a[i], b[i], OpEq)
		if err != nil || !eq {
			return false
		}
	}
	return true
}

func deepEqualNode(a, b *Node) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TextNode, CommentNode:
		return a.Value == b.Value
	case PINode:
		return a.Name == b.Name && a.Value == b.Value
	case AttributeNode:
		return a.Name == b.Name && a.Value == b.Value
	}
	if a.Kind == ElementNode && a.Name != b.Name {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for _, aa := range a.Attrs {
		v, ok := b.Attr(aa.Name)
		if !ok || v != aa.Value {
			return false
		}
	}
	ac := comparableChildren(a)
	bc := comparableChildren(b)
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if !deepEqualNode(ac[i], bc[i]) {
			return false
		}
	}
	return true
}

func comparableChildren(n *Node) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Kind == CommentNode || c.Kind == PINode {
			continue
		}
		out = append(out, c)
	}
	return out
}

package xdm

import "sort"

func sortNodes(nodes []*Node) {
	sort.SliceStable(nodes, func(i, j int) bool { return DocOrderLess(nodes[i], nodes[j]) })
}

// NodesOf extracts the nodes from a sequence, returning ok=false when any
// item is not a node (needed by path expressions, which require node
// inputs).
func NodesOf(s Sequence) ([]*Node, bool) {
	out := make([]*Node, 0, len(s))
	for _, it := range s {
		n, isNode := it.(*Node)
		if !isNode {
			return nil, false
		}
		out = append(out, n)
	}
	return out, true
}

// NodeSeq wraps nodes into a Sequence.
func NodeSeq(nodes []*Node) Sequence {
	out := make(Sequence, len(nodes))
	for i, n := range nodes {
		out[i] = n
	}
	return out
}

package xdm

import (
	"math"
	"strconv"
	"strings"
)

// String is an xs:string atomic value.
type String string

// Integer is an xs:integer atomic value.
type Integer int64

// Decimal is an xs:decimal atomic value. The reproduction represents
// decimals as float64; the paper's workloads never exceed float64
// precision.
type Decimal float64

// Double is an xs:double atomic value.
type Double float64

// Boolean is an xs:boolean atomic value.
type Boolean bool

// Untyped is an xs:untypedAtomic value, produced by atomizing nodes of
// untyped (schema-less) documents.
type Untyped string

func (String) isItem()  {}
func (Integer) isItem() {}
func (Decimal) isItem() {}
func (Double) isItem()  {}
func (Boolean) isItem() {}
func (Untyped) isItem() {}

// StringValue implements Item.
func (v String) StringValue() string { return string(v) }

// StringValue implements Item.
func (v Integer) StringValue() string { return strconv.FormatInt(int64(v), 10) }

// StringValue implements Item.
func (v Decimal) StringValue() string { return formatFloat(float64(v)) }

// StringValue implements Item.
func (v Double) StringValue() string { return formatFloat(float64(v)) }

// StringValue implements Item.
func (v Boolean) StringValue() string {
	if v {
		return "true"
	}
	return "false"
}

// StringValue implements Item.
func (v Untyped) StringValue() string { return string(v) }

// TypeName implements Item.
func (String) TypeName() string { return "xs:string" }

// TypeName implements Item.
func (Integer) TypeName() string { return "xs:integer" }

// TypeName implements Item.
func (Decimal) TypeName() string { return "xs:decimal" }

// TypeName implements Item.
func (Double) TypeName() string { return "xs:double" }

// TypeName implements Item.
func (Boolean) TypeName() string { return "xs:boolean" }

// TypeName implements Item.
func (Untyped) TypeName() string { return "xs:untypedAtomic" }

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "INF"
	}
	if math.IsInf(f, -1) {
		return "-INF"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// NumericValue returns the float64 value of a numeric or untyped/string
// item, with ok=false when the item is not convertible.
func NumericValue(it Item) (float64, bool) {
	switch v := it.(type) {
	case Integer:
		return float64(v), true
	case Decimal:
		return float64(v), true
	case Double:
		return float64(v), true
	case Untyped:
		f, err := strconv.ParseFloat(strings.TrimSpace(string(v)), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// IsNumeric reports whether the item is one of the numeric atomic types.
func IsNumeric(it Item) bool {
	switch it.(type) {
	case Integer, Decimal, Double:
		return true
	}
	return false
}

// CastAtomic casts an atomic item to the named XML Schema type, following
// XQuery cast rules for the supported types. Nodes are atomized first by
// callers; passing a node is an error.
func CastAtomic(it Item, typeName string) (Item, error) {
	if n, ok := it.(*Node); ok {
		it = Untyped(n.StringValue())
	}
	s := strings.TrimSpace(it.StringValue())
	switch typeName {
	case "xs:string":
		return String(it.StringValue()), nil
	case "xs:untypedAtomic":
		return Untyped(it.StringValue()), nil
	case "xs:integer", "xs:int", "xs:long", "xs:short", "xs:byte",
		"xs:nonNegativeInteger", "xs:positiveInteger", "xs:unsignedInt":
		switch v := it.(type) {
		case Integer:
			return v, nil
		case Decimal:
			return Integer(int64(v)), nil
		case Double:
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return nil, NewError("FOCA0002", "cannot cast NaN/INF to xs:integer")
			}
			return Integer(int64(v)), nil
		case Boolean:
			if v {
				return Integer(1), nil
			}
			return Integer(0), nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, Errorf("FORG0001", "cannot cast %q to xs:integer", s)
		}
		return Integer(i), nil
	case "xs:decimal":
		switch v := it.(type) {
		case Integer:
			return Decimal(v), nil
		case Decimal:
			return v, nil
		case Double:
			return Decimal(v), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, Errorf("FORG0001", "cannot cast %q to xs:decimal", s)
		}
		return Decimal(f), nil
	case "xs:double", "xs:float":
		switch v := it.(type) {
		case Integer:
			return Double(v), nil
		case Decimal:
			return Double(v), nil
		case Double:
			return v, nil
		}
		switch s {
		case "INF":
			return Double(math.Inf(1)), nil
		case "-INF":
			return Double(math.Inf(-1)), nil
		case "NaN":
			return Double(math.NaN()), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, Errorf("FORG0001", "cannot cast %q to xs:double", s)
		}
		return Double(f), nil
	case "xs:boolean":
		switch v := it.(type) {
		case Boolean:
			return v, nil
		case Integer:
			return Boolean(v != 0), nil
		case Double:
			return Boolean(v == v && v != 0), nil
		case Decimal:
			return Boolean(v != 0), nil
		}
		switch s {
		case "true", "1":
			return Boolean(true), nil
		case "false", "0":
			return Boolean(false), nil
		}
		return nil, Errorf("FORG0001", "cannot cast %q to xs:boolean", s)
	case "xs:anyAtomicType", "item()":
		return it, nil
	default:
		return nil, Errorf("XPST0051", "unsupported cast target type %s", typeName)
	}
}

// CompareOp names a value comparison operator.
type CompareOp int

// Comparison operators in XQuery value-comparison order.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the XQuery keyword for the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "eq"
	case OpNe:
		return "ne"
	case OpLt:
		return "lt"
	case OpLe:
		return "le"
	case OpGt:
		return "gt"
	default:
		return "ge"
	}
}

// CompareAtomic applies a value comparison between two atomic items,
// applying the XQuery type-promotion rules (untypedAtomic compares as
// string against strings, as number against numbers; numeric types are
// promoted to the widest operand type).
func CompareAtomic(a, b Item, op CompareOp) (bool, error) {
	c, err := compareKey(a, b)
	if err != nil {
		return false, err
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	default:
		return c >= 0, nil
	}
}

// compareKey returns -1/0/1 ordering between two atomics.
func compareKey(a, b Item) (int, error) {
	if na, aNum := a.(*Node); aNum {
		a = Untyped(na.StringValue())
	}
	if nb, bNum := b.(*Node); bNum {
		b = Untyped(nb.StringValue())
	}
	// untyped pairs with the other operand's type; untyped-untyped is string.
	ua, aIsU := a.(Untyped)
	ub, bIsU := b.(Untyped)
	switch {
	case aIsU && bIsU:
		return strings.Compare(string(ua), string(ub)), nil
	case aIsU:
		if IsNumeric(b) {
			fa, ok := NumericValue(a)
			if !ok {
				return 0, Errorf("FORG0001", "cannot compare untyped %q as number", ua)
			}
			fb, _ := NumericValue(b)
			return cmpFloat(fa, fb), nil
		}
		if bb, isB := b.(Boolean); isB {
			ca, err := CastAtomic(a, "xs:boolean")
			if err != nil {
				return 0, err
			}
			return cmpBool(bool(ca.(Boolean)), bool(bb)), nil
		}
		return strings.Compare(string(ua), b.StringValue()), nil
	case bIsU:
		c, err := compareKey(b, a)
		return -c, err
	}
	if IsNumeric(a) && IsNumeric(b) {
		fa, _ := NumericValue(a)
		fb, _ := NumericValue(b)
		return cmpFloat(fa, fb), nil
	}
	switch va := a.(type) {
	case String:
		if vb, ok := b.(String); ok {
			return strings.Compare(string(va), string(vb)), nil
		}
	case Boolean:
		if vb, ok := b.(Boolean); ok {
			return cmpBool(bool(va), bool(vb)), nil
		}
	}
	return 0, Errorf("XPTY0004", "cannot compare %s with %s", a.TypeName(), b.TypeName())
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// GeneralCompare implements XQuery general comparisons (=, !=, <, <=, >,
// >=) with existential semantics: true if the comparison holds between
// any pair of atomized items from the two sequences.
func GeneralCompare(a, b Sequence, op CompareOp) (bool, error) {
	aa := Atomize(a)
	bb := Atomize(b)
	for _, x := range aa {
		for _, y := range bb {
			ok, err := CompareAtomic(x, y, op)
			if err != nil {
				// Per general-comparison rules, incomparable pairs raise
				// a type error; untyped casting failures propagate too.
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	return false, nil
}

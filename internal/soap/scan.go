package soap

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"unicode/utf8"
)

// scan.go is the hand-rolled pull-tokenizer behind the streaming decoder
// (decode.go). It is specialized for what an XRPC envelope can contain —
// elements, attributes, character data, CDATA, comments, processing
// instructions, and a skipped DOCTYPE — and works directly on the
// received []byte: no string(data) copy of the body, no reflection, no
// DOM. Element and attribute names are interned (the envelope grammar
// repeats the same two dozen names thousands of times in a bulk
// request), attribute values hit the same table for the common xsi:type
// names, and text is only unescaped when the decoder actually keeps it.
//
// The tokenizer has two input modes sharing every scan routine:
//
//   - byte mode: data holds the whole message, src is nil. Every
//     "refill" is a no-op, so the hot loops behave exactly as they did
//     when the scanner only accepted []byte.
//   - stream mode: src refills data incrementally, so envelopes decode
//     as bytes arrive off the socket. Scans hold absolute offsets into
//     data, so refills only ever append; the consumed prefix is
//     reclaimed between tokens (compact), keeping the window bounded by
//     the largest single token plus one read.

// Token kinds produced by scanner.next.
type tokenKind int

const (
	tokEOF tokenKind = iota
	// tokStart is a start tag (or self-closing element: selfClose set);
	// name and attrs describe it.
	tokStart
	// tokEnd is an end tag. Mirroring the reference decoder (which used
	// encoding/xml.RawToken), end-tag names are not matched against start
	// tags — only balance is enforced.
	tokEnd
	// tokText is character data; text holds the raw bytes (entities
	// still escaped unless cdata is set).
	tokText
	// tokComment is a comment; text holds the content.
	tokComment
	// tokPI is a processing instruction; name is the target, text the
	// instruction.
	tokPI
)

type scanAttr struct{ name, value string }

// scanner is the pull tokenizer state. The zero value plus data is ready
// to use (byte mode); setting src instead selects stream mode.
type scanner struct {
	data []byte
	pos  int
	// depth is the current element nesting depth; next() maintains it
	// and rejects underflow and unclosed elements at EOF.
	depth int

	// src, when non-nil, refills data from an incremental reader. It is
	// cleared at EOF; a non-EOF read error is held in srcErr and
	// surfaces as soon as the scanner needs bytes it never got.
	src    io.Reader
	srcErr error

	// current-token state, valid until the following next() call
	name      string
	attrs     []scanAttr
	selfClose bool
	text      []byte
	cdata     bool

	// names interns tag/attribute names not in the static table.
	names map[string]string
}

const (
	// minRead is the smallest free space grow() will read into; below
	// it the buffer is regrown first so reads stay reasonably sized.
	minRead = 512
	// initialStreamBuf is the first allocation for a stream-mode
	// window.
	initialStreamBuf = 4096
	// compactThreshold is how much consumed prefix accumulates before
	// compact() slides the window; sliding on every token would make
	// tokenizing an n-byte buffer O(n²).
	compactThreshold = 4096
)

// grow appends more input from src to data without moving existing
// bytes (in-flight scans hold absolute offsets into data). It reports
// whether at least one new byte arrived; false with a nil error means
// the input is complete (byte mode, or stream EOF).
func (s *scanner) grow() (bool, error) {
	for s.src != nil {
		if cap(s.data)-len(s.data) < minRead {
			newCap := 2 * cap(s.data)
			if newCap < initialStreamBuf {
				newCap = initialStreamBuf
			}
			buf := make([]byte, len(s.data), newCap)
			copy(buf, s.data)
			s.data = buf
		}
		n, err := s.src.Read(s.data[len(s.data):cap(s.data)])
		s.data = s.data[:len(s.data)+n]
		if err != nil {
			s.src = nil
			if err != io.EOF {
				s.srcErr = fmt.Errorf("soap: reading envelope: %w", err)
			}
		}
		if n > 0 {
			return true, nil
		}
	}
	return false, s.srcErr
}

// compact slides the unconsumed window to the front of the buffer. Only
// called between tokens (the previous token's name/attr values are
// copied strings; its text bytes are dead by contract) and only in
// stream mode, once the consumed prefix is worth reclaiming.
func (s *scanner) compact() {
	if s.src == nil || s.pos == 0 {
		return
	}
	if s.pos == len(s.data) {
		s.data = s.data[:0]
		s.pos = 0
		return
	}
	if s.pos >= compactThreshold || s.pos*2 >= cap(s.data) {
		n := copy(s.data, s.data[s.pos:])
		s.data = s.data[:n]
		s.pos = 0
	}
}

// internTable holds the names the XRPC envelope grammar uses with the
// prefixes our encoder emits, plus the common xsi:type values — the
// strings a well-formed message repeats per call. Lookup via string(b)
// compiles to a no-allocation map access.
var internTable = map[string]string{}

func init() {
	for _, s := range []string{
		"env:Envelope", "env:Body", "env:Fault", "env:Code", "env:Value",
		"env:Reason", "env:Text",
		"xrpc:request", "xrpc:response", "xrpc:call", "xrpc:sequence",
		"xrpc:atomic-value", "xrpc:element", "xrpc:document",
		"xrpc:attribute", "xrpc:text", "xrpc:comment", "xrpc:pi",
		"xrpc:queryID", "xrpc:participatingPeers", "xrpc:peer",
		"xrpc:module", "xrpc:method", "xrpc:arity", "xrpc:location",
		"xrpc:updCall", "xrpc:seqNr", "xrpc:host", "xrpc:timestamp",
		"xrpc:timeout", "xrpc:nodeid", "xrpc:target",
		"xsi:type", "xsi:schemaLocation",
		"xmlns:xrpc", "xmlns:env", "xmlns:xs", "xmlns:xsi", "xml:lang",
		"uri", "en", "true", "false",
		"xs:string", "xs:integer", "xs:decimal", "xs:double",
		"xs:boolean", "xs:untypedAtomic",
		NSEnv, NSXRPC, NSXS, NSXSI, SchemaLoc,
	} {
		internTable[s] = s
	}
}

func (s *scanner) intern(b []byte) string {
	if v, ok := internTable[string(b)]; ok {
		return v
	}
	if v, ok := s.names[string(b)]; ok {
		return v
	}
	if s.names == nil {
		s.names = make(map[string]string, 8)
	}
	v := string(b)
	s.names[v] = v
	return v
}

func (s *scanner) errf(format string, args ...any) error {
	return fmt.Errorf("soap: malformed envelope: "+format, args...)
}

// next advances to the next token. Iterative over skipped directives: a
// run of millions of <!...> directives must not consume stack.
func (s *scanner) next() (tokenKind, error) {
	s.compact()
	for {
		for s.pos >= len(s.data) {
			ok, err := s.grow()
			if err != nil {
				return tokEOF, err
			}
			if !ok {
				if s.depth > 0 {
					return tokEOF, s.errf("%d unclosed element(s)", s.depth)
				}
				return tokEOF, nil
			}
		}
		if s.data[s.pos] != '<' {
			return s.scanText()
		}
		// Classifying a '<' needs up to len("<![CDATA[") bytes of
		// lookahead; refill until they arrive or the input ends short.
		for s.src != nil && s.pos+9 > len(s.data) {
			if ok, err := s.grow(); err != nil {
				return tokEOF, err
			} else if !ok {
				break
			}
		}
		if s.pos+1 >= len(s.data) {
			return tokEOF, s.errf("unexpected EOF after '<'")
		}
		switch s.data[s.pos+1] {
		case '/':
			return s.scanEndTag()
		case '!':
			rest := s.data[s.pos:]
			if bytes.HasPrefix(rest, markCommentStart) {
				return s.scanComment()
			}
			if bytes.HasPrefix(rest, markCDATAStart) {
				return s.scanCDATA()
			}
			// DOCTYPE and other directives: skip, like the reference
			// parser
			if err := s.skipDirective(); err != nil {
				return tokEOF, err
			}
		case '?':
			return s.scanPI()
		default:
			return s.scanStartTag()
		}
	}
}

var (
	markCommentStart = []byte("<!--")
	markCommentEnd   = []byte("-->")
	markCDATAStart   = []byte("<![CDATA[")
	markCDATAEnd     = []byte("]]>")
	markPIEnd        = []byte("?>")
)

func (s *scanner) scanText() (tokenKind, error) {
	from := s.pos
	for {
		if i := bytes.IndexByte(s.data[from:], '<'); i >= 0 {
			end := from + i
			s.text = s.data[s.pos:end]
			s.cdata = false
			s.pos = end
			return tokText, nil
		}
		from = len(s.data)
		if ok, err := s.grow(); err != nil {
			return tokEOF, err
		} else if !ok {
			s.text = s.data[s.pos:]
			s.cdata = false
			s.pos = len(s.data)
			return tokText, nil
		}
	}
}

func isNameByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '/', '>', '=', '<', '"', '\'':
		return false
	}
	return true
}

func skipWS(data []byte, i int) int {
	for i < len(data) {
		switch data[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return i
		}
	}
	return i
}

// nameEnd advances i past name bytes, refilling at the buffer edge.
func (s *scanner) nameEnd(i int) (int, error) {
	for {
		for i < len(s.data) && isNameByte(s.data[i]) {
			i++
		}
		if i < len(s.data) {
			return i, nil
		}
		if ok, err := s.grow(); err != nil {
			return i, err
		} else if !ok {
			return i, nil
		}
	}
}

// wsEnd advances i past whitespace, refilling at the buffer edge.
func (s *scanner) wsEnd(i int) (int, error) {
	for {
		i = skipWS(s.data, i)
		if i < len(s.data) {
			return i, nil
		}
		if ok, err := s.grow(); err != nil {
			return i, err
		} else if !ok {
			return i, nil
		}
	}
}

// find locates marker at or after start, refilling as needed; returns
// -1 when the input ends first. The resume offset backs up
// len(marker)-1 bytes so a marker split across reads is still found
// without rescanning the whole window.
func (s *scanner) find(start int, marker []byte) (int, error) {
	from := start
	for {
		if i := bytes.Index(s.data[from:], marker); i >= 0 {
			return from + i, nil
		}
		from = len(s.data) - len(marker) + 1
		if from < start {
			from = start
		}
		if ok, err := s.grow(); err != nil {
			return -1, err
		} else if !ok {
			return -1, nil
		}
	}
}

func (s *scanner) scanStartTag() (tokenKind, error) {
	start := s.pos + 1
	i, err := s.nameEnd(start)
	if err != nil {
		return tokEOF, err
	}
	if i == start {
		return tokEOF, s.errf("malformed start tag at offset %d", s.pos)
	}
	s.name = s.intern(s.data[start:i])
	s.attrs = s.attrs[:0]
	s.selfClose = false
	for {
		if i, err = s.wsEnd(i); err != nil {
			return tokEOF, err
		}
		if i >= len(s.data) {
			return tokEOF, s.errf("unterminated start tag <%s", s.name)
		}
		switch s.data[i] {
		case '>':
			s.pos = i + 1
			s.depth++
			return tokStart, nil
		case '/':
			for i+1 >= len(s.data) {
				if ok, err := s.grow(); err != nil {
					return tokEOF, err
				} else if !ok {
					break
				}
			}
			if i+1 >= len(s.data) || s.data[i+1] != '>' {
				return tokEOF, s.errf("malformed element <%s", s.name)
			}
			s.selfClose = true
			s.pos = i + 2
			return tokStart, nil
		}
		as := i
		if i, err = s.nameEnd(i); err != nil {
			return tokEOF, err
		}
		if i == as {
			return tokEOF, s.errf("malformed attribute in <%s>", s.name)
		}
		aname := s.intern(s.data[as:i])
		if i, err = s.wsEnd(i); err != nil {
			return tokEOF, err
		}
		if i >= len(s.data) || s.data[i] != '=' {
			return tokEOF, s.errf("attribute %s in <%s> has no value", aname, s.name)
		}
		if i, err = s.wsEnd(i + 1); err != nil {
			return tokEOF, err
		}
		if i >= len(s.data) || (s.data[i] != '"' && s.data[i] != '\'') {
			return tokEOF, s.errf("unquoted value for attribute %s in <%s>", aname, s.name)
		}
		quote := s.data[i]
		i++
		vs := i
		for {
			if j := bytes.IndexByte(s.data[i:], quote); j >= 0 {
				i += j
				break
			}
			i = len(s.data)
			if ok, err := s.grow(); err != nil {
				return tokEOF, err
			} else if !ok {
				return tokEOF, s.errf("unterminated value for attribute %s in <%s>", aname, s.name)
			}
		}
		val, err := s.attrValue(s.data[vs:i])
		if err != nil {
			return tokEOF, err
		}
		s.attrs = append(s.attrs, scanAttr{name: aname, value: val})
		i++
	}
}

// attrValue unescapes an attribute value, interning the common constant
// values (type names, namespace URIs).
func (s *scanner) attrValue(raw []byte) (string, error) {
	if bytes.IndexByte(raw, '&') < 0 && bytes.IndexByte(raw, '\r') < 0 {
		if v, ok := internTable[string(raw)]; ok {
			return v, nil
		}
		return string(raw), nil
	}
	out, err := s.unescape(make([]byte, 0, len(raw)), raw)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func (s *scanner) scanEndTag() (tokenKind, error) {
	start := s.pos + 2
	i, err := s.nameEnd(start)
	if err != nil {
		return tokEOF, err
	}
	if i == start {
		return tokEOF, s.errf("malformed end tag at offset %d", s.pos)
	}
	s.name = s.intern(s.data[start:i])
	if i, err = s.wsEnd(i); err != nil {
		return tokEOF, err
	}
	if i >= len(s.data) || s.data[i] != '>' {
		return tokEOF, s.errf("malformed end tag </%s", s.name)
	}
	s.pos = i + 1
	if s.depth == 0 {
		return tokEOF, s.errf("unbalanced end tag </%s>", s.name)
	}
	s.depth--
	return tokEnd, nil
}

func (s *scanner) scanComment() (tokenKind, error) {
	start := s.pos + len("<!--")
	end, err := s.find(start, markCommentEnd)
	if err != nil {
		return tokEOF, err
	}
	if end < 0 {
		return tokEOF, s.errf("unterminated comment")
	}
	s.text = s.data[start:end]
	s.cdata = true // comments get no entity expansion
	s.pos = end + len("-->")
	return tokComment, nil
}

func (s *scanner) scanCDATA() (tokenKind, error) {
	start := s.pos + len("<![CDATA[")
	end, err := s.find(start, markCDATAEnd)
	if err != nil {
		return tokEOF, err
	}
	if end < 0 {
		return tokEOF, s.errf("unterminated CDATA section")
	}
	s.text = s.data[start:end]
	s.cdata = true
	s.pos = end + len("]]>")
	return tokText, nil
}

func (s *scanner) scanPI() (tokenKind, error) {
	start := s.pos + 2
	i := start
	for {
		for i < len(s.data) && isNameByte(s.data[i]) && s.data[i] != '?' {
			i++
		}
		if i < len(s.data) {
			break
		}
		if ok, err := s.grow(); err != nil {
			return tokEOF, err
		} else if !ok {
			break
		}
	}
	if i == start {
		return tokEOF, s.errf("processing instruction without a target")
	}
	s.name = s.intern(s.data[start:i])
	var err error
	if i, err = s.wsEnd(i); err != nil {
		return tokEOF, err
	}
	end, err := s.find(i, markPIEnd)
	if err != nil {
		return tokEOF, err
	}
	if end < 0 {
		return tokEOF, s.errf("unterminated processing instruction <?%s", s.name)
	}
	s.text = s.data[i:end]
	s.cdata = true
	s.pos = end + len("?>")
	return tokPI, nil
}

// skipDirective consumes a <!DOCTYPE ...> (or any <!...>) directive,
// tolerating an internal subset in brackets and quoted strings.
func (s *scanner) skipDirective() error {
	i := s.pos + 2
	bracket := 0
	var quote byte
	for {
		for i < len(s.data) {
			c := s.data[i]
			switch {
			case quote != 0:
				if c == quote {
					quote = 0
				}
			case c == '"' || c == '\'':
				quote = c
			case c == '[':
				bracket++
			case c == ']':
				bracket--
			case c == '>' && bracket <= 0:
				s.pos = i + 1
				return nil
			}
			i++
		}
		if ok, err := s.grow(); err != nil {
			return err
		} else if !ok {
			return s.errf("unterminated directive")
		}
	}
}

// maxInternedText bounds the text values worth interning: short values
// (document names, probe keys, repeated element text in bulk requests)
// recur across calls; long payloads do not.
const maxInternedText = 32

// textValue returns the current text token as a string, expanding
// entities and normalizing line endings; the single place raw bytes
// become a kept Go string. Short clean values are interned — a bulk
// request repeats the same parameter texts across its calls.
func (s *scanner) textValue() (string, error) {
	raw := s.text
	if s.cdata {
		if bytes.IndexByte(raw, '\r') < 0 {
			return s.internText(raw), nil
		}
		out, _ := s.unescapeNoEntities(make([]byte, 0, len(raw)), raw)
		return string(out), nil
	}
	if bytes.IndexByte(raw, '&') < 0 && bytes.IndexByte(raw, '\r') < 0 {
		return s.internText(raw), nil
	}
	out, err := s.unescape(make([]byte, 0, len(raw)), raw)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

func (s *scanner) internText(raw []byte) string {
	if len(raw) > maxInternedText {
		return string(raw)
	}
	return s.intern(raw)
}

// unescape expands the five predefined entities and numeric character
// references, and normalizes \r\n / \r to \n (the XML line-ending rule
// encoding/xml applies).
func (s *scanner) unescape(dst, raw []byte) ([]byte, error) {
	for i := 0; i < len(raw); {
		switch raw[i] {
		case '&':
			semi := bytes.IndexByte(raw[i:], ';')
			if semi < 2 {
				return nil, s.errf("invalid entity reference")
			}
			ent := raw[i+1 : i+semi]
			if ent[0] == '#' {
				r, err := parseCharRef(ent[1:])
				if err != nil {
					return nil, s.errf("%v", err)
				}
				dst = utf8.AppendRune(dst, r)
			} else {
				switch string(ent) {
				case "lt":
					dst = append(dst, '<')
				case "gt":
					dst = append(dst, '>')
				case "amp":
					dst = append(dst, '&')
				case "apos":
					dst = append(dst, '\'')
				case "quot":
					dst = append(dst, '"')
				default:
					return nil, s.errf("unknown entity &%s;", ent)
				}
			}
			i += semi + 1
		case '\r':
			if i+1 < len(raw) && raw[i+1] == '\n' {
				i++
			}
			dst = append(dst, '\n')
			i++
		default:
			dst = append(dst, raw[i])
			i++
		}
	}
	return dst, nil
}

// unescapeNoEntities only normalizes line endings (CDATA, comments).
func (s *scanner) unescapeNoEntities(dst, raw []byte) ([]byte, error) {
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\r' {
			if i+1 < len(raw) && raw[i+1] == '\n' {
				i++
			}
			dst = append(dst, '\n')
			continue
		}
		dst = append(dst, raw[i])
	}
	return dst, nil
}

func parseCharRef(b []byte) (rune, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty character reference")
	}
	base := 10
	if b[0] == 'x' || b[0] == 'X' {
		base = 16
		b = b[1:]
	}
	n, err := strconv.ParseUint(string(b), base, 32)
	if err != nil {
		return 0, fmt.Errorf("invalid character reference")
	}
	r := rune(n)
	if !utf8.ValidRune(r) {
		return 0, fmt.Errorf("invalid character reference")
	}
	return r, nil
}

package soap

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"xrpc/internal/xdm"
)

func TestEncodeRequestMatchesPaperExample(t *testing.T) {
	// §2.1: the request message for Q1 (filmsByActor("Sean Connery")).
	req := &Request{
		Module:   "films",
		Method:   "filmsByActor",
		Arity:    1,
		Location: "http://x.example.org/film.xq",
		Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
	}
	msg := string(EncodeRequest(req))
	for _, want := range []string{
		`xmlns:xrpc="http://monetdb.cwi.nl/XQuery"`,
		`xmlns:env="http://www.w3.org/2003/05/soap-envelope"`,
		`xrpc:module="films"`,
		`xrpc:method="filmsByActor"`,
		`xrpc:arity="1"`,
		`xrpc:location="http://x.example.org/film.xq"`,
		`<xrpc:call>`,
		`<xrpc:sequence>`,
		`xsi:type="xs:string"`,
		`Sean Connery`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("request message missing %q\n%s", want, msg)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	qid := &QueryID{
		ID:        "q-123",
		Host:      "xrpc://a.example.org",
		Timestamp: time.Date(2007, 9, 23, 12, 0, 0, 0, time.UTC),
		Timeout:   30,
	}
	req := &Request{
		Module:   "films",
		Method:   "filmsByActor",
		Arity:    1,
		Location: "http://x.example.org/film.xq",
		Updating: true,
		QueryID:  qid,
		Calls: [][]xdm.Sequence{
			{{xdm.String("Julie Andrews")}},
			{{xdm.String("Sean Connery")}},
		},
	}
	back, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if back.Module != "films" || back.Method != "filmsByActor" || back.Arity != 1 {
		t.Fatalf("header = %+v", back)
	}
	if !back.Updating {
		t.Error("updating flag lost")
	}
	if back.QueryID == nil || back.QueryID.ID != "q-123" || back.QueryID.Timeout != 30 {
		t.Fatalf("queryID = %+v", back.QueryID)
	}
	if !back.QueryID.Timestamp.Equal(qid.Timestamp) {
		t.Errorf("timestamp = %v", back.QueryID.Timestamp)
	}
	if len(back.Calls) != 2 {
		t.Fatalf("calls = %d", len(back.Calls))
	}
	if got := back.Calls[1][0][0].StringValue(); got != "Sean Connery" {
		t.Errorf("call 1 param = %q", got)
	}
}

// §2.1: the heterogeneously typed sequence of integer 2 and double 3.1.
func TestHeterogeneousSequence(t *testing.T) {
	req := &Request{
		Module: "m", Method: "f", Arity: 1, Location: "l",
		Calls: [][]xdm.Sequence{{{xdm.Integer(2), xdm.Double(3.1)}}},
	}
	msg := string(EncodeRequest(req))
	if !strings.Contains(msg, `xsi:type="xs:integer">2<`) {
		t.Errorf("missing integer encoding:\n%s", msg)
	}
	if !strings.Contains(msg, `xsi:type="xs:double">3.1<`) {
		t.Errorf("missing double encoding:\n%s", msg)
	}
	back, err := DecodeRequest([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	seq := back.Calls[0][0]
	if _, ok := seq[0].(xdm.Integer); !ok {
		t.Errorf("item 0 = %T", seq[0])
	}
	if _, ok := seq[1].(xdm.Double); !ok {
		t.Errorf("item 1 = %T", seq[1])
	}
}

func TestNodeParameterRoundTrip(t *testing.T) {
	frag, err := xdm.ParseFragment(`<name>The Rock</name>`)
	if err != nil {
		t.Fatal(err)
	}
	req := &Request{
		Module: "m", Method: "f", Arity: 1, Location: "l",
		Calls: [][]xdm.Sequence{{{frag[0], xdm.String("x")}}},
	}
	back, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	seq := back.Calls[0][0]
	n, ok := seq[0].(*xdm.Node)
	if !ok {
		t.Fatalf("item 0 = %T", seq[0])
	}
	if n.Name != "name" || n.StringValue() != "The Rock" {
		t.Errorf("node = %s", xdm.SerializeNode(n))
	}
	// call-by-value: fresh fragment, upward axes empty
	if n.Parent != nil {
		t.Error("decoded node must be a fresh fragment (no parent)")
	}
	if up := xdm.Step(n, xdm.AxisParent, xdm.NodeTest{KindTest: true, AnyKind: true}); len(up) != 0 {
		t.Error("parent axis on decoded node must be empty")
	}
}

// §2.2: navigating from a decoded node must never reach the SOAP
// envelope or other parameters.
func TestDecodedNodeCannotSeeEnvelope(t *testing.T) {
	frag, _ := xdm.ParseFragment(`<a/>`)
	frag2, _ := xdm.ParseFragment(`<b/>`)
	req := &Request{
		Module: "m", Method: "f", Arity: 2, Location: "l",
		Calls: [][]xdm.Sequence{{{frag[0]}, {frag2[0]}}},
	}
	back, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	a := back.Calls[0][0][0].(*xdm.Node)
	b := back.Calls[0][1][0].(*xdm.Node)
	if a.Root().Name == "Envelope" || a.Root() == b.Root() {
		t.Error("decoded parameters leak shared tree structure")
	}
	if a.TreeID() == b.TreeID() {
		t.Error("decoded parameters share tree identity")
	}
}

func TestAllNodeKindsRoundTrip(t *testing.T) {
	el, _ := xdm.ParseFragment(`<e a="1">t</e>`)
	doc, _ := xdm.ParseDocument("d.xml", `<root><x/></root>`)
	attr := xdm.NewAttribute("k", "v")
	attr.Seal()
	text := xdm.NewText("some text")
	text.Seal()
	comment := xdm.NewComment("a comment")
	comment.Seal()
	pi := xdm.NewPI("target", "data")
	pi.Seal()
	seq := xdm.Sequence{el[0], doc, attr, text, comment, pi}

	resp := &Response{Module: "m", Method: "f", Results: []xdm.Sequence{seq}}
	back, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	got := back.Results[0]
	if len(got) != 6 {
		t.Fatalf("items = %d, want 6", len(got))
	}
	kinds := []xdm.NodeKind{
		xdm.ElementNode, xdm.DocumentNode, xdm.AttributeNode,
		xdm.TextNode, xdm.CommentNode, xdm.PINode,
	}
	for i, k := range kinds {
		n, ok := got[i].(*xdm.Node)
		if !ok || n.Kind != k {
			t.Errorf("item %d: %v, want kind %v", i, got[i], k)
		}
	}
	if got[2].(*xdm.Node).Name != "k" || got[2].(*xdm.Node).Value != "v" {
		t.Errorf("attribute = %+v", got[2])
	}
	if got[5].(*xdm.Node).Name != "target" {
		t.Errorf("pi target = %q", got[5].(*xdm.Node).Name)
	}
}

func TestResponseRoundTripWithPeers(t *testing.T) {
	resp := &Response{
		Module: "films", Method: "filmsByActor",
		Results: []xdm.Sequence{
			{xdm.String("one")},
			{}, // empty result for the second call
			{xdm.Integer(42)},
		},
		Peers: []string{"xrpc://y.example.org", "xrpc://z.example.org"},
	}
	back, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 3 {
		t.Fatalf("results = %d", len(back.Results))
	}
	if len(back.Results[1]) != 0 {
		t.Errorf("empty sequence not preserved: %v", back.Results[1])
	}
	if len(back.Peers) != 2 || back.Peers[0] != "xrpc://y.example.org" {
		t.Errorf("peers = %v", back.Peers)
	}
}

func TestFaultMatchesPaperExample(t *testing.T) {
	// §2.1 "XRPC Error Message": module load failure.
	f := &Fault{Code: "env:Sender", Reason: "could not load module!"}
	msg := string(EncodeFault(f))
	for _, want := range []string{
		"<env:Fault>", "<env:Value>env:Sender</env:Value>",
		`<env:Text xml:lang="en">could not load module!</env:Text>`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("fault missing %q\n%s", want, msg)
		}
	}
	m, err := Decode([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	if m.Fault == nil || m.Fault.Code != "env:Sender" || m.Fault.Reason != "could not load module!" {
		t.Fatalf("fault = %+v", m.Fault)
	}
	// DecodeResponse surfaces faults as errors
	if _, err := DecodeResponse([]byte(msg)); err == nil {
		t.Error("DecodeResponse should return fault as error")
	} else if _, ok := err.(*Fault); !ok {
		t.Errorf("error type = %T", err)
	}
}

func TestBulkRPCMatchesPaperSection32(t *testing.T) {
	// §3.2: the two-call bulk request for Q2.
	req := &Request{
		Module: "films", Method: "filmsByActor", Arity: 1,
		Location: "http://x.example.org/film.xq",
		Calls: [][]xdm.Sequence{
			{{xdm.String("Julie Andrews")}},
			{{xdm.String("Sean Connery")}},
		},
	}
	msg := string(EncodeRequest(req))
	if got := strings.Count(msg, "<xrpc:call>"); got != 2 {
		t.Errorf("bulk request has %d calls, want 2", got)
	}
	back, _ := DecodeRequest([]byte(msg))
	if len(back.Calls) != 2 {
		t.Fatalf("decoded %d calls", len(back.Calls))
	}
}

func TestEscaping(t *testing.T) {
	req := &Request{
		Module: "m", Method: "f", Arity: 1, Location: "l",
		Calls: [][]xdm.Sequence{{{xdm.String(`a<b>&"c`)}}},
	}
	back, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Calls[0][0][0].StringValue(); got != `a<b>&"c` {
		t.Errorf("escaped string = %q", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		``,
		`<not-soap/>`,
		`<env:Envelope xmlns:env="x"></env:Envelope>`,
		`<env:Envelope xmlns:env="x"><env:Body><xrpc:other/></env:Body></env:Envelope>`,
	}
	for _, msg := range bad {
		if _, err := Decode([]byte(msg)); err == nil {
			t.Errorf("%q: expected decode error", msg)
		}
	}
}

func TestArityMismatchRejected(t *testing.T) {
	msg := `<env:Envelope xmlns:env="e" xmlns:xrpc="x">
<env:Body><xrpc:request xrpc:module="m" xrpc:method="f" xrpc:arity="2" xrpc:location="l">
<xrpc:call><xrpc:sequence/></xrpc:call>
</xrpc:request></env:Body></env:Envelope>`
	if _, err := DecodeRequest([]byte(msg)); err == nil {
		t.Error("expected arity mismatch error")
	}
}

func TestForeignPrefixTolerated(t *testing.T) {
	// another implementation may pick different prefixes
	msg := `<?xml version="1.0"?>
<S:Envelope xmlns:S="http://www.w3.org/2003/05/soap-envelope" xmlns:x="http://monetdb.cwi.nl/XQuery">
<S:Body>
<x:request x:module="films" x:method="f" x:arity="1" x:location="loc">
<x:call><x:sequence><x:atomic-value xsi:type="xs:string" xmlns:xsi="i">v</x:atomic-value></x:sequence></x:call>
</x:request>
</S:Body>
</S:Envelope>`
	req, err := DecodeRequest([]byte(msg))
	if err != nil {
		t.Fatal(err)
	}
	if req.Module != "films" || len(req.Calls) != 1 {
		t.Fatalf("req = %+v", req)
	}
	if req.Calls[0][0][0].StringValue() != "v" {
		t.Errorf("param = %v", req.Calls[0][0])
	}
}

// Property: atomic sequences of any strings/ints survive the round trip.
func TestQuickAtomicRoundTrip(t *testing.T) {
	f := func(strs []string, ints []int64) bool {
		var seq xdm.Sequence
		for _, s := range strs {
			clean := strings.Map(func(r rune) rune {
				if r >= 0x20 && r < 0x7F {
					return r
				}
				return 'x'
			}, s)
			seq = append(seq, xdm.String(clean))
		}
		for _, i := range ints {
			seq = append(seq, xdm.Integer(i))
		}
		req := &Request{Module: "m", Method: "f", Arity: 1, Location: "l",
			Calls: [][]xdm.Sequence{{seq}}}
		back, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		got := back.Calls[0][0]
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i].StringValue() != seq[i].StringValue() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package soap implements the SOAP XRPC message format of §2.1 of the
// paper: request/response envelopes, the s2n/n2s parameter marshaling
// sub-format (document/literal style, distinct from SOAP RPC's
// rpc/encoded), Bulk RPC (multiple <xrpc:call> elements per request,
// §3.2), the queryID isolation extension (§2.2), the participating-peers
// piggyback used by distributed commit (§2.3), and SOAP Fault errors.
//
// The wire path is streaming and allocation-lean: encoding goes through
// the pooled Encoder (encoder.go), decoding through a pull-tokenizer
// specialized for the XRPC envelope grammar (scan.go, decode.go). The
// seed's DOM-based implementations survive as executable references
// (refenc.go, DecodeDOM below) that differential tests pin against the
// streaming paths.
package soap

import (
	"fmt"
	"strings"
	"time"

	"xrpc/internal/xdm"
)

// Namespace URIs used in XRPC envelopes.
const (
	NSEnv  = "http://www.w3.org/2003/05/soap-envelope"
	NSXRPC = "http://monetdb.cwi.nl/XQuery"
	NSXS   = "http://www.w3.org/2001/XMLSchema"
	NSXSI  = "http://www.w3.org/2001/XMLSchema-instance"
	// SchemaLoc is the xsi:schemaLocation advertised in envelopes.
	SchemaLoc = "http://monetdb.cwi.nl/XQuery http://monetdb.cwi.nl/XQuery/XRPC.xsd"
)

// QueryID identifies the query a request belongs to, for repeatable-read
// isolation (§2.2 "SOAP XRPC Extension: Isolation"). Host and Timestamp
// say where and when the query started; Timeout is the number of seconds
// the isolated database state must be conserved (relative, to tolerate
// clock skew between peers).
type QueryID struct {
	ID        string
	Host      string
	Timestamp time.Time
	Timeout   int
}

// Request is one SOAP XRPC request: possibly many calls (Bulk RPC) of
// the same function.
type Request struct {
	Module   string // module namespace URI
	Method   string // function local name
	Arity    int
	Location string // at-hint location of the module
	Updating bool   // calls an XQUF updating function
	QueryID  *QueryID
	// TraceID correlates one client request across every shard it
	// scatters to: minted at the front door (proxy or standalone
	// server), carried on the envelope as xrpc:traceID next to the
	// queryID, surfaced in each peer's slow-query log. Empty means
	// untraced — the attribute is omitted, keeping old peers
	// byte-compatible.
	TraceID string
	// Calls holds the actual parameters: Calls[i][j] is parameter j of
	// call i. len(Calls[i]) == Arity for every i.
	Calls [][]xdm.Sequence
	// ByFragment enables the call-by-fragment protocol extension
	// (paper footnote 4): node parameters that are descendants of other
	// node parameters travel as xrpc:nodeid references, preserving
	// ancestor/descendant relationships at the remote peer and
	// compressing the message.
	ByFragment bool
	// SeqNrs optionally tags each call with its original query position
	// (the deterministic-update-order extension of [35]); len must equal
	// len(Calls) when non-nil. Bulk RPC executes calls out of query
	// order, but pending updates tagged this way apply in query order.
	SeqNrs []int64
}

// Response is a SOAP XRPC response: one result sequence per call, plus
// the piggybacked list of peers that participated in handling the
// request tree (used by the WS-Coordination registration, §2.3).
type Response struct {
	Module  string
	Method  string
	Results []xdm.Sequence
	Peers   []string
	// Raw optionally carries pre-serialized result sequences: when
	// Raw[i] is non-nil it is spliced into the envelope verbatim in
	// place of Results[i] (it must be exactly the bytes the encoder
	// would produce for that sequence: "<xrpc:sequence>…</xrpc:sequence>\n").
	// The per-shard response cache stores results in this form so a
	// warm hit skips both execution and re-serialization.
	Raw [][]byte
}

// Fault is a SOAP Fault message; it doubles as the Go error type for
// remote failures ("any error will cause a run-time error at the site
// that originated the query").
type Fault struct {
	Code   string // "env:Sender" or "env:Receiver"
	Reason string
}

// Error implements error.
func (f *Fault) Error() string { return "xrpc fault (" + f.Code + "): " + f.Reason }

// SequenceToNode is s2n producing an XDM tree directly (no text
// round-trip): a fresh <xrpc:sequence> element whose children wrap each
// item per the XRPC schema. Node items are deep-copied (call-by-value).
func SequenceToNode(seq xdm.Sequence) *xdm.Node {
	root := xdm.NewElement("xrpc:sequence")
	for _, it := range seq {
		switch v := it.(type) {
		case *xdm.Node:
			switch v.Kind {
			case xdm.ElementNode:
				wrap := xdm.NewElement("xrpc:element")
				wrap.AppendChild(v.Clone())
				root.AppendChild(wrap)
			case xdm.DocumentNode:
				wrap := xdm.NewElement("xrpc:document")
				for _, c := range v.Children {
					wrap.AppendChild(c.Clone())
				}
				root.AppendChild(wrap)
			case xdm.AttributeNode:
				wrap := xdm.NewElement("xrpc:attribute")
				wrap.SetAttr(xdm.NewAttribute(v.Name, v.Value))
				root.AppendChild(wrap)
			case xdm.TextNode:
				wrap := xdm.NewElement("xrpc:text")
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			case xdm.CommentNode:
				wrap := xdm.NewElement("xrpc:comment")
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			case xdm.PINode:
				wrap := xdm.NewElement("xrpc:pi")
				wrap.SetAttr(xdm.NewAttribute("xrpc:target", v.Name))
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			}
		default:
			wrap := xdm.NewElement("xrpc:atomic-value")
			wrap.SetAttr(xdm.NewAttribute("xsi:type", it.TypeName()))
			if s := it.StringValue(); s != "" {
				wrap.AppendChild(xdm.NewText(s))
			}
			root.AppendChild(wrap)
		}
	}
	root.Seal()
	return root
}

// ------------------------------------------------- DOM decoder (reference)

// Message is the decoded form of any XRPC envelope body.
type Message struct {
	Request  *Request
	Response *Response
	Fault    *Fault
}

// DecodeDOM parses a SOAP XRPC message of any kind by materializing the
// whole envelope as an xdm.Node tree and walking it — the seed's
// decoder, kept as the executable reference the streaming pull-decoder
// (decode.go) is differentially tested against.
func DecodeDOM(data []byte) (*Message, error) {
	doc, err := xdm.ParseDocument("soap-message", string(data))
	if err != nil {
		return nil, fmt.Errorf("soap: malformed envelope: %w", err)
	}
	env := firstChildLocal(doc, "Envelope")
	if env == nil {
		return nil, fmt.Errorf("soap: missing Envelope")
	}
	body := firstChildLocal(env, "Body")
	if body == nil {
		return nil, fmt.Errorf("soap: missing Body")
	}
	if f := firstChildLocal(body, "Fault"); f != nil {
		return &Message{Fault: decodeFaultDOM(f)}, nil
	}
	if rq := firstChildLocal(body, "request"); rq != nil {
		req, err := decodeRequestDOM(rq)
		if err != nil {
			return nil, err
		}
		return &Message{Request: req}, nil
	}
	if rs := firstChildLocal(body, "response"); rs != nil {
		resp, err := decodeResponseDOM(rs)
		if err != nil {
			return nil, err
		}
		return &Message{Response: resp}, nil
	}
	return nil, fmt.Errorf("soap: body contains no request, response or fault")
}

func decodeRequestDOM(rq *xdm.Node) (*Request, error) {
	req := &Request{
		Module:   attrLocal(rq, "module"),
		Method:   attrLocal(rq, "method"),
		Location: attrLocal(rq, "location"),
		Updating: attrLocal(rq, "updCall") == "true",
		TraceID:  attrLocal(rq, "traceID"),
	}
	fmt.Sscanf(attrLocal(rq, "arity"), "%d", &req.Arity)
	if q := firstChildLocal(rq, "queryID"); q != nil {
		qid := &QueryID{
			ID:   q.StringValue(),
			Host: attrLocal(q, "host"),
		}
		if ts, err := time.Parse(time.RFC3339Nano, attrLocal(q, "timestamp")); err == nil {
			qid.Timestamp = ts
		}
		fmt.Sscanf(attrLocal(q, "timeout"), "%d", &qid.Timeout)
		req.QueryID = qid
	}
	for _, c := range rq.ChildElements() {
		if localName(c.Name) != "call" {
			continue
		}
		var params []xdm.Sequence
		for _, s := range c.ChildElements() {
			if localName(s.Name) != "sequence" {
				continue
			}
			seq, err := DecodeSequence(s)
			if err != nil {
				return nil, err
			}
			params = append(params, seq)
		}
		if req.Arity > 0 && len(params) != req.Arity {
			return nil, fmt.Errorf("soap: call has %d parameters, arity is %d", len(params), req.Arity)
		}
		if err := ResolveNodeRefs(params); err != nil {
			return nil, err
		}
		if sn := attrLocal(c, "seqNr"); sn != "" {
			var v int64
			fmt.Sscanf(sn, "%d", &v)
			// pad earlier untagged calls with their index
			for len(req.SeqNrs) < len(req.Calls) {
				req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
			}
			req.SeqNrs = append(req.SeqNrs, v)
		}
		req.Calls = append(req.Calls, params)
	}
	if req.SeqNrs != nil {
		for len(req.SeqNrs) < len(req.Calls) {
			req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
		}
	}
	return req, nil
}

func decodeResponseDOM(rs *xdm.Node) (*Response, error) {
	resp := &Response{
		Module: attrLocal(rs, "module"),
		Method: attrLocal(rs, "method"),
	}
	for _, c := range rs.ChildElements() {
		switch localName(c.Name) {
		case "sequence":
			seq, err := DecodeSequence(c)
			if err != nil {
				return nil, err
			}
			resp.Results = append(resp.Results, seq)
		case "participatingPeers":
			for _, p := range c.ChildElements() {
				if uri, ok := p.Attr("uri"); ok {
					resp.Peers = append(resp.Peers, uri)
				}
			}
		}
	}
	return resp, nil
}

func decodeFaultDOM(f *xdm.Node) *Fault {
	fault := &Fault{Code: "env:Receiver"}
	if code := firstChildLocal(f, "Code"); code != nil {
		if v := firstChildLocal(code, "Value"); v != nil {
			fault.Code = strings.TrimSpace(v.StringValue())
		}
	}
	if reason := firstChildLocal(f, "Reason"); reason != nil {
		fault.Reason = strings.TrimSpace(reason.StringValue())
	}
	return fault
}

// DecodeSequence is n2s (§2.2): converts an <xrpc:sequence> element back
// into an XDM sequence. Node-typed values come out as fresh XML
// fragments: navigating upwards or sideways from them yields empty
// results, which is exactly the call-by-value guarantee the formal
// semantics requires (a decoded node must never expose the SOAP envelope
// or sibling parameters). Besides the DOM decoder, the §4 wrapper uses
// it on constructed (never-serialized) response trees.
func DecodeSequence(seqEl *xdm.Node) (xdm.Sequence, error) {
	var out xdm.Sequence
	for _, v := range seqEl.ChildElements() {
		switch localName(v.Name) {
		case "atomic-value":
			typ, _ := v.Attr("xsi:type")
			if typ == "" {
				typ = "xs:untypedAtomic"
			}
			item, err := xdm.CastAtomic(xdm.String(v.StringValue()), typ)
			if err != nil {
				return nil, fmt.Errorf("soap: bad atomic value %q as %s: %w", v.StringValue(), typ, err)
			}
			out = append(out, item)
		case "element":
			if ref := attrLocal(v, "nodeid"); ref != "" && len(v.ChildElements()) == 0 {
				// call-by-fragment placeholder, resolved after all
				// parameters of the call are decoded
				ph := xdm.NewElement(nodeRefPlaceholder)
				ph.Value = ref
				out = append(out, ph)
				continue
			}
			for _, c := range v.ChildElements() {
				fresh := c.Clone()
				out = append(out, fresh)
			}
		case "document":
			doc := xdm.NewDocument("")
			for _, c := range v.Children {
				doc.AppendChild(c.Clone())
			}
			doc.Seal()
			out = append(out, doc)
		case "attribute":
			for _, a := range v.Attrs {
				attr := xdm.NewAttribute(a.Name, a.Value)
				attr.Seal()
				out = append(out, attr)
			}
		case "text":
			t := xdm.NewText(v.StringValue())
			t.Seal()
			out = append(out, t)
		case "comment":
			c := xdm.NewComment(v.StringValue())
			c.Seal()
			out = append(out, c)
		case "pi":
			target := attrLocal(v, "target")
			pi := xdm.NewPI(target, v.StringValue())
			pi.Seal()
			out = append(out, pi)
		default:
			return nil, fmt.Errorf("soap: unknown sequence item element %q", v.Name)
		}
	}
	return out, nil
}

// localName strips any namespace prefix.
func localName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// firstChildLocal finds the first child element with the given local
// name, tolerating any namespace prefix (interoperability: other
// implementations may choose different prefixes).
func firstChildLocal(n *xdm.Node, local string) *xdm.Node {
	for _, c := range n.ChildElements() {
		if localName(c.Name) == local {
			return c
		}
	}
	return nil
}

// attrLocal reads an attribute by local name regardless of prefix.
func attrLocal(n *xdm.Node, local string) string {
	for _, a := range n.Attrs {
		if localName(a.Name) == local {
			return a.Value
		}
	}
	return ""
}

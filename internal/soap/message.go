// Package soap implements the SOAP XRPC message format of §2.1 of the
// paper: request/response envelopes, the s2n/n2s parameter marshaling
// sub-format (document/literal style, distinct from SOAP RPC's
// rpc/encoded), Bulk RPC (multiple <xrpc:call> elements per request,
// §3.2), the queryID isolation extension (§2.2), the participating-peers
// piggyback used by distributed commit (§2.3), and SOAP Fault errors.
package soap

import (
	"fmt"
	"strings"
	"time"

	"xrpc/internal/xdm"
)

// Namespace URIs used in XRPC envelopes.
const (
	NSEnv  = "http://www.w3.org/2003/05/soap-envelope"
	NSXRPC = "http://monetdb.cwi.nl/XQuery"
	NSXS   = "http://www.w3.org/2001/XMLSchema"
	NSXSI  = "http://www.w3.org/2001/XMLSchema-instance"
	// SchemaLoc is the xsi:schemaLocation advertised in envelopes.
	SchemaLoc = "http://monetdb.cwi.nl/XQuery http://monetdb.cwi.nl/XQuery/XRPC.xsd"
)

// QueryID identifies the query a request belongs to, for repeatable-read
// isolation (§2.2 "SOAP XRPC Extension: Isolation"). Host and Timestamp
// say where and when the query started; Timeout is the number of seconds
// the isolated database state must be conserved (relative, to tolerate
// clock skew between peers).
type QueryID struct {
	ID        string
	Host      string
	Timestamp time.Time
	Timeout   int
}

// Request is one SOAP XRPC request: possibly many calls (Bulk RPC) of
// the same function.
type Request struct {
	Module   string // module namespace URI
	Method   string // function local name
	Arity    int
	Location string // at-hint location of the module
	Updating bool   // calls an XQUF updating function
	QueryID  *QueryID
	// Calls holds the actual parameters: Calls[i][j] is parameter j of
	// call i. len(Calls[i]) == Arity for every i.
	Calls [][]xdm.Sequence
	// ByFragment enables the call-by-fragment protocol extension
	// (paper footnote 4): node parameters that are descendants of other
	// node parameters travel as xrpc:nodeid references, preserving
	// ancestor/descendant relationships at the remote peer and
	// compressing the message.
	ByFragment bool
	// SeqNrs optionally tags each call with its original query position
	// (the deterministic-update-order extension of [35]); len must equal
	// len(Calls) when non-nil. Bulk RPC executes calls out of query
	// order, but pending updates tagged this way apply in query order.
	SeqNrs []int64
}

// Response is a SOAP XRPC response: one result sequence per call, plus
// the piggybacked list of peers that participated in handling the
// request tree (used by the WS-Coordination registration, §2.3).
type Response struct {
	Module  string
	Method  string
	Results []xdm.Sequence
	Peers   []string
}

// Fault is a SOAP Fault message; it doubles as the Go error type for
// remote failures ("any error will cause a run-time error at the site
// that originated the query").
type Fault struct {
	Code   string // "env:Sender" or "env:Receiver"
	Reason string
}

// Error implements error.
func (f *Fault) Error() string { return "xrpc fault (" + f.Code + "): " + f.Reason }

// ------------------------------------------------------------- encoding

func envelopeOpen(b *strings.Builder) {
	b.WriteString(`<?xml version="1.0" encoding="utf-8"?>` + "\n")
	b.WriteString(`<env:Envelope xmlns:xrpc="` + NSXRPC + `"` + "\n")
	b.WriteString(` xmlns:env="` + NSEnv + `"` + "\n")
	b.WriteString(` xmlns:xs="` + NSXS + `"` + "\n")
	b.WriteString(` xmlns:xsi="` + NSXSI + `"` + "\n")
	b.WriteString(` xsi:schemaLocation="` + SchemaLoc + `">` + "\n")
	b.WriteString("<env:Body>\n")
}

func envelopeClose(b *strings.Builder) {
	b.WriteString("</env:Body>\n</env:Envelope>\n")
}

// EncodeRequest renders the request as a SOAP XRPC message.
func EncodeRequest(r *Request) []byte {
	var b strings.Builder
	envelopeOpen(&b)
	fmt.Fprintf(&b, `<xrpc:request xrpc:module=%q xrpc:method=%q xrpc:arity="%d" xrpc:location=%q`,
		r.Module, r.Method, r.Arity, r.Location)
	if r.Updating {
		b.WriteString(` xrpc:updCall="true"`)
	}
	b.WriteString(">\n")
	if r.QueryID != nil {
		fmt.Fprintf(&b, `<xrpc:queryID xrpc:host=%q xrpc:timestamp=%q xrpc:timeout="%d">%s</xrpc:queryID>`+"\n",
			r.QueryID.Host, r.QueryID.Timestamp.UTC().Format(time.RFC3339Nano),
			r.QueryID.Timeout, escape(r.QueryID.ID))
	}
	for ci, call := range r.Calls {
		if r.SeqNrs != nil {
			fmt.Fprintf(&b, `<xrpc:call xrpc:seqNr="%d">`+"\n", r.SeqNrs[ci])
		} else {
			b.WriteString("<xrpc:call>\n")
		}
		var refs [][]*NodeRef
		if r.ByFragment {
			refs, _ = CompressCall(call)
		}
		for pi, param := range call {
			if refs == nil {
				writeSequence(&b, param)
				continue
			}
			b.WriteString("<xrpc:sequence>")
			for ii, it := range param {
				writeItemRef(&b, it, refs[pi][ii])
			}
			b.WriteString("</xrpc:sequence>\n")
		}
		b.WriteString("</xrpc:call>\n")
	}
	b.WriteString("</xrpc:request>\n")
	envelopeClose(&b)
	return []byte(b.String())
}

// EncodeResponse renders the response message.
func EncodeResponse(r *Response) []byte {
	var b strings.Builder
	envelopeOpen(&b)
	fmt.Fprintf(&b, `<xrpc:response xrpc:module=%q xrpc:method=%q>`+"\n", r.Module, r.Method)
	for _, seq := range r.Results {
		writeSequence(&b, seq)
	}
	if len(r.Peers) > 0 {
		b.WriteString("<xrpc:participatingPeers>\n")
		for _, p := range r.Peers {
			fmt.Fprintf(&b, `<xrpc:peer uri=%q/>`+"\n", p)
		}
		b.WriteString("</xrpc:participatingPeers>\n")
	}
	b.WriteString("</xrpc:response>\n")
	envelopeClose(&b)
	return []byte(b.String())
}

// EncodeFault renders a SOAP Fault message.
func EncodeFault(f *Fault) []byte {
	var b strings.Builder
	envelopeOpen(&b)
	b.WriteString("<env:Fault>\n<env:Code><env:Value>")
	b.WriteString(escape(f.Code))
	b.WriteString("</env:Value></env:Code>\n<env:Reason>\n")
	b.WriteString(`<env:Text xml:lang="en">`)
	b.WriteString(escape(f.Reason))
	b.WriteString("</env:Text>\n</env:Reason>\n</env:Fault>\n")
	envelopeClose(&b)
	return []byte(b.String())
}

// WriteSequence exposes the s2n marshaling (sequence -> <xrpc:sequence>
// XML) for the XRPC wrapper's generated queries.
func WriteSequence(b *strings.Builder, seq xdm.Sequence) { writeSequence(b, seq) }

// SequenceToNode is s2n producing an XDM tree directly (no text
// round-trip): a fresh <xrpc:sequence> element whose children wrap each
// item per the XRPC schema. Node items are deep-copied (call-by-value).
func SequenceToNode(seq xdm.Sequence) *xdm.Node {
	root := xdm.NewElement("xrpc:sequence")
	for _, it := range seq {
		switch v := it.(type) {
		case *xdm.Node:
			switch v.Kind {
			case xdm.ElementNode:
				wrap := xdm.NewElement("xrpc:element")
				wrap.AppendChild(v.Clone())
				root.AppendChild(wrap)
			case xdm.DocumentNode:
				wrap := xdm.NewElement("xrpc:document")
				for _, c := range v.Children {
					wrap.AppendChild(c.Clone())
				}
				root.AppendChild(wrap)
			case xdm.AttributeNode:
				wrap := xdm.NewElement("xrpc:attribute")
				wrap.SetAttr(xdm.NewAttribute(v.Name, v.Value))
				root.AppendChild(wrap)
			case xdm.TextNode:
				wrap := xdm.NewElement("xrpc:text")
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			case xdm.CommentNode:
				wrap := xdm.NewElement("xrpc:comment")
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			case xdm.PINode:
				wrap := xdm.NewElement("xrpc:pi")
				wrap.SetAttr(xdm.NewAttribute("xrpc:target", v.Name))
				wrap.AppendChild(xdm.NewText(v.Value))
				root.AppendChild(wrap)
			}
		default:
			wrap := xdm.NewElement("xrpc:atomic-value")
			wrap.SetAttr(xdm.NewAttribute("xsi:type", it.TypeName()))
			if s := it.StringValue(); s != "" {
				wrap.AppendChild(xdm.NewText(s))
			}
			root.AppendChild(wrap)
		}
	}
	root.Seal()
	return root
}

// writeSequence is s2n (§2.2): the SOAP representation of an XDM
// sequence.
func writeSequence(b *strings.Builder, seq xdm.Sequence) {
	b.WriteString("<xrpc:sequence>")
	for _, it := range seq {
		writeItem(b, it)
	}
	b.WriteString("</xrpc:sequence>\n")
}

func writeItem(b *strings.Builder, it xdm.Item) {
	switch v := it.(type) {
	case *xdm.Node:
		switch v.Kind {
		case xdm.ElementNode:
			b.WriteString("<xrpc:element>")
			b.WriteString(xdm.SerializeNode(v))
			b.WriteString("</xrpc:element>")
		case xdm.DocumentNode:
			b.WriteString("<xrpc:document>")
			b.WriteString(xdm.SerializeNode(v))
			b.WriteString("</xrpc:document>")
		case xdm.AttributeNode:
			// serialized inside the wrapper: <xrpc:attribute x="y"/>
			fmt.Fprintf(b, `<xrpc:attribute %s=%q/>`, v.Name, v.Value)
		case xdm.TextNode:
			b.WriteString("<xrpc:text>")
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:text>")
		case xdm.CommentNode:
			b.WriteString("<xrpc:comment>")
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:comment>")
		case xdm.PINode:
			fmt.Fprintf(b, `<xrpc:pi xrpc:target=%q>`, v.Name)
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:pi>")
		}
	default:
		fmt.Fprintf(b, `<xrpc:atomic-value xsi:type=%q>`, it.TypeName())
		b.WriteString(escape(it.StringValue()))
		b.WriteString("</xrpc:atomic-value>")
	}
}

func escape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ------------------------------------------------------------- decoding

// Message is the decoded form of any XRPC envelope body.
type Message struct {
	Request  *Request
	Response *Response
	Fault    *Fault
}

// Decode parses a SOAP XRPC message of any kind.
func Decode(data []byte) (*Message, error) {
	doc, err := xdm.ParseDocument("soap-message", string(data))
	if err != nil {
		return nil, fmt.Errorf("soap: malformed envelope: %w", err)
	}
	env := firstChildLocal(doc, "Envelope")
	if env == nil {
		return nil, fmt.Errorf("soap: missing Envelope")
	}
	body := firstChildLocal(env, "Body")
	if body == nil {
		return nil, fmt.Errorf("soap: missing Body")
	}
	if f := firstChildLocal(body, "Fault"); f != nil {
		return &Message{Fault: decodeFault(f)}, nil
	}
	if rq := firstChildLocal(body, "request"); rq != nil {
		req, err := decodeRequest(rq)
		if err != nil {
			return nil, err
		}
		return &Message{Request: req}, nil
	}
	if rs := firstChildLocal(body, "response"); rs != nil {
		resp, err := decodeResponse(rs)
		if err != nil {
			return nil, err
		}
		return &Message{Response: resp}, nil
	}
	return nil, fmt.Errorf("soap: body contains no request, response or fault")
}

// DecodeRequest parses and requires a request message.
func DecodeRequest(data []byte) (*Request, error) {
	m, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Request == nil {
		return nil, fmt.Errorf("soap: message is not a request")
	}
	return m.Request, nil
}

// DecodeResponse parses a response message, converting faults into *Fault
// errors.
func DecodeResponse(data []byte) (*Response, error) {
	m, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Fault != nil {
		return nil, m.Fault
	}
	if m.Response == nil {
		return nil, fmt.Errorf("soap: message is not a response")
	}
	return m.Response, nil
}

func decodeRequest(rq *xdm.Node) (*Request, error) {
	req := &Request{
		Module:   attrLocal(rq, "module"),
		Method:   attrLocal(rq, "method"),
		Location: attrLocal(rq, "location"),
		Updating: attrLocal(rq, "updCall") == "true",
	}
	fmt.Sscanf(attrLocal(rq, "arity"), "%d", &req.Arity)
	if q := firstChildLocal(rq, "queryID"); q != nil {
		qid := &QueryID{
			ID:   q.StringValue(),
			Host: attrLocal(q, "host"),
		}
		if ts, err := time.Parse(time.RFC3339Nano, attrLocal(q, "timestamp")); err == nil {
			qid.Timestamp = ts
		}
		fmt.Sscanf(attrLocal(q, "timeout"), "%d", &qid.Timeout)
		req.QueryID = qid
	}
	for _, c := range rq.ChildElements() {
		if localName(c.Name) != "call" {
			continue
		}
		var params []xdm.Sequence
		for _, s := range c.ChildElements() {
			if localName(s.Name) != "sequence" {
				continue
			}
			seq, err := DecodeSequence(s)
			if err != nil {
				return nil, err
			}
			params = append(params, seq)
		}
		if req.Arity > 0 && len(params) != req.Arity {
			return nil, fmt.Errorf("soap: call has %d parameters, arity is %d", len(params), req.Arity)
		}
		if err := ResolveNodeRefs(params); err != nil {
			return nil, err
		}
		if sn := attrLocal(c, "seqNr"); sn != "" {
			var v int64
			fmt.Sscanf(sn, "%d", &v)
			// pad earlier untagged calls with their index
			for len(req.SeqNrs) < len(req.Calls) {
				req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
			}
			req.SeqNrs = append(req.SeqNrs, v)
		}
		req.Calls = append(req.Calls, params)
	}
	if req.SeqNrs != nil {
		for len(req.SeqNrs) < len(req.Calls) {
			req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
		}
	}
	return req, nil
}

func decodeResponse(rs *xdm.Node) (*Response, error) {
	resp := &Response{
		Module: attrLocal(rs, "module"),
		Method: attrLocal(rs, "method"),
	}
	for _, c := range rs.ChildElements() {
		switch localName(c.Name) {
		case "sequence":
			seq, err := DecodeSequence(c)
			if err != nil {
				return nil, err
			}
			resp.Results = append(resp.Results, seq)
		case "participatingPeers":
			for _, p := range c.ChildElements() {
				if uri, ok := p.Attr("uri"); ok {
					resp.Peers = append(resp.Peers, uri)
				}
			}
		}
	}
	return resp, nil
}

func decodeFault(f *xdm.Node) *Fault {
	fault := &Fault{Code: "env:Receiver"}
	if code := firstChildLocal(f, "Code"); code != nil {
		if v := firstChildLocal(code, "Value"); v != nil {
			fault.Code = strings.TrimSpace(v.StringValue())
		}
	}
	if reason := firstChildLocal(f, "Reason"); reason != nil {
		fault.Reason = strings.TrimSpace(reason.StringValue())
	}
	return fault
}

// DecodeSequence is n2s (§2.2): converts an <xrpc:sequence> element back
// into an XDM sequence. Node-typed values come out as fresh XML
// fragments: navigating upwards or sideways from them yields empty
// results, which is exactly the call-by-value guarantee the formal
// semantics requires (a decoded node must never expose the SOAP envelope
// or sibling parameters).
func DecodeSequence(seqEl *xdm.Node) (xdm.Sequence, error) {
	var out xdm.Sequence
	for _, v := range seqEl.ChildElements() {
		switch localName(v.Name) {
		case "atomic-value":
			typ, _ := v.Attr("xsi:type")
			if typ == "" {
				typ = "xs:untypedAtomic"
			}
			item, err := xdm.CastAtomic(xdm.String(v.StringValue()), typ)
			if err != nil {
				return nil, fmt.Errorf("soap: bad atomic value %q as %s: %w", v.StringValue(), typ, err)
			}
			out = append(out, item)
		case "element":
			if ref := attrLocal(v, "nodeid"); ref != "" && len(v.ChildElements()) == 0 {
				// call-by-fragment placeholder, resolved after all
				// parameters of the call are decoded
				ph := xdm.NewElement(nodeRefPlaceholder)
				ph.Value = ref
				out = append(out, ph)
				continue
			}
			for _, c := range v.ChildElements() {
				fresh := c.Clone()
				out = append(out, fresh)
			}
		case "document":
			doc := xdm.NewDocument("")
			for _, c := range v.Children {
				doc.AppendChild(c.Clone())
			}
			doc.Seal()
			out = append(out, doc)
		case "attribute":
			for _, a := range v.Attrs {
				attr := xdm.NewAttribute(a.Name, a.Value)
				attr.Seal()
				out = append(out, attr)
			}
		case "text":
			t := xdm.NewText(v.StringValue())
			t.Seal()
			out = append(out, t)
		case "comment":
			c := xdm.NewComment(v.StringValue())
			c.Seal()
			out = append(out, c)
		case "pi":
			target := attrLocal(v, "target")
			pi := xdm.NewPI(target, v.StringValue())
			pi.Seal()
			out = append(out, pi)
		default:
			return nil, fmt.Errorf("soap: unknown sequence item element %q", v.Name)
		}
	}
	return out, nil
}

// localName strips any namespace prefix.
func localName(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// firstChildLocal finds the first child element with the given local
// name, tolerating any namespace prefix (interoperability: other
// implementations may choose different prefixes).
func firstChildLocal(n *xdm.Node, local string) *xdm.Node {
	for _, c := range n.ChildElements() {
		if localName(c.Name) == local {
			return c
		}
	}
	return nil
}

// attrLocal reads an attribute by local name regardless of prefix.
func attrLocal(n *xdm.Node, local string) string {
	for _, a := range n.Attrs {
		if localName(a.Name) == local {
			return a.Value
		}
	}
	return ""
}

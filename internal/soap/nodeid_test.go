package soap

import (
	"strings"
	"testing"

	"xrpc/internal/xdm"
)

const joinDoc = `<site><people>
<person id="p1"><name>Ann</name><address><city>Delft</city></address></person>
<person id="p2"><name>Bob</name></person>
</people></site>`

func fragParams(t *testing.T) []xdm.Sequence {
	t.Helper()
	doc, err := xdm.ParseDocument("site.xml", joinDoc)
	if err != nil {
		t.Fatal(err)
	}
	people := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "people"})[0]
	ann := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "person"})[0]
	city := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "city"})[0]
	// param 0: the whole people fragment; params 1, 2: nodes inside it
	return []xdm.Sequence{{people}, {ann}, {city}}
}

func TestCompressCallFindsDescendants(t *testing.T) {
	params := fragParams(t)
	refs, compressed := CompressCall(params)
	if !compressed {
		t.Fatal("descendant parameters not detected")
	}
	if refs[0][0] != nil {
		t.Error("the fragment itself must be serialized in full")
	}
	if refs[1][0] == nil || refs[2][0] == nil {
		t.Fatalf("descendant params not referenced: %+v", refs)
	}
	if refs[1][0].Param != 0 || refs[2][0].Param != 0 {
		t.Errorf("refs point at wrong parameter: %+v %+v", refs[1][0], refs[2][0])
	}
}

func TestByFragmentRoundTripPreservesRelationships(t *testing.T) {
	params := fragParams(t)
	req := &Request{
		Module: "m", Method: "f", Arity: 3, Location: "l",
		ByFragment: true,
		Calls:      [][]xdm.Sequence{params},
	}
	msg := EncodeRequest(req)
	if !strings.Contains(string(msg), "xrpc:nodeid=") {
		t.Fatalf("message not compressed:\n%s", msg)
	}
	back, err := DecodeRequest(msg)
	if err != nil {
		t.Fatal(err)
	}
	people := back.Calls[0][0][0].(*xdm.Node)
	ann := back.Calls[0][1][0].(*xdm.Node)
	city := back.Calls[0][2][0].(*xdm.Node)
	if ann.Name != "person" {
		t.Fatalf("resolved ann = %s", xdm.SerializeNode(ann))
	}
	if id, _ := ann.Attr("id"); id != "p1" {
		t.Errorf("ann id = %s", id)
	}
	if city.StringValue() != "Delft" {
		t.Errorf("city = %s", xdm.SerializeNode(city))
	}
	// THE point of the extension: ancestor/descendant relationships
	// between parameters survive at the remote side
	if ann.Root() != people.Root() {
		t.Error("ann and people do not share a tree at the remote peer")
	}
	up := xdm.Step(city, xdm.AxisAncestor, xdm.NodeTest{Name: "person"})
	if len(up) != 1 || up[0] != ann {
		t.Error("city's person ancestor is not the ann parameter")
	}
}

func TestByFragmentCompressesMessage(t *testing.T) {
	params := fragParams(t)
	plain := EncodeRequest(&Request{
		Module: "m", Method: "f", Arity: 3, Location: "l",
		Calls: [][]xdm.Sequence{params},
	})
	compressed := EncodeRequest(&Request{
		Module: "m", Method: "f", Arity: 3, Location: "l",
		ByFragment: true,
		Calls:      [][]xdm.Sequence{params},
	})
	if len(compressed) >= len(plain) {
		t.Errorf("by-fragment message not smaller: %d vs %d", len(compressed), len(plain))
	}
}

func TestByFragmentUnrelatedNodesStayByValue(t *testing.T) {
	a, _ := xdm.ParseFragment(`<a><x/></a>`)
	b, _ := xdm.ParseFragment(`<b><y/></b>`)
	req := &Request{
		Module: "m", Method: "f", Arity: 2, Location: "l",
		ByFragment: true,
		Calls:      [][]xdm.Sequence{{{a[0]}, {b[0]}}},
	}
	msg := EncodeRequest(req)
	if strings.Contains(string(msg), "xrpc:nodeid=") {
		t.Error("unrelated parameters must not be compressed")
	}
	back, err := DecodeRequest(msg)
	if err != nil {
		t.Fatal(err)
	}
	ra := back.Calls[0][0][0].(*xdm.Node)
	rb := back.Calls[0][1][0].(*xdm.Node)
	if ra.Root() == rb.Root() {
		t.Error("unrelated parameters must stay in separate trees")
	}
}

func TestNodeRefParsing(t *testing.T) {
	ref := NodeRef{Param: 2, Item: 1, Ord: 17}
	back, err := parseNodeRef(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != ref {
		t.Errorf("round trip = %+v", back)
	}
	for _, bad := range []string{"", "x1:2", "p1:2", "p1.2", "pa.b:c"} {
		if _, err := parseNodeRef(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}

func TestDanglingNodeRefRejected(t *testing.T) {
	msg := `<env:Envelope xmlns:env="e" xmlns:xrpc="x"><env:Body>
<xrpc:request xrpc:module="m" xrpc:method="f" xrpc:arity="1" xrpc:location="l">
<xrpc:call><xrpc:sequence><xrpc:element xrpc:nodeid="p0.0:99"/></xrpc:sequence></xrpc:call>
</xrpc:request></env:Body></env:Envelope>`
	if _, err := DecodeRequest([]byte(msg)); err == nil {
		t.Error("self-referencing/dangling nodeid must be rejected")
	}
}

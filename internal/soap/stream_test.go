package soap

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/iotest"

	"xrpc/internal/xdm"
)

// stream_test.go pins the incremental decoder (stream.go) to the
// buffered one under adversarial framing: whatever way the bytes are
// chopped up — one at a time, random chunks, splits inside tags, char
// refs and CDATA markers — DecodeStream must agree with Decode, and the
// item-at-a-time ResponseStream must reproduce DecodeResponse exactly.

// chunkReader yields data in fixed-size chunks, forcing the scanner
// through its refill paths at every possible alignment.
type chunkReader struct {
	data []byte
	size int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.size
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

// fixtureMessages returns every encoded fixture plus the hand-written
// foreign envelopes from the differential tests.
func fixtureMessages(t testing.TB) [][]byte {
	var msgs [][]byte
	for _, req := range fixtureRequests(t) {
		msgs = append(msgs, EncodeRequest(req))
	}
	for _, resp := range fixtureResponses(t) {
		msgs = append(msgs, EncodeResponse(resp))
	}
	msgs = append(msgs,
		EncodeFault(&Fault{Code: "env:Sender", Reason: " spaced \n reason "}),
		[]byte(`<?xml version="1.0"?><S:Envelope xmlns:S="e"><S:Body><x:request x:module='m' x:method='f' x:arity='1' x:location='l'><x:call><x:sequence><x:atomic-value xsi:type="xs:integer" xmlns:xsi="i">7</x:atomic-value></x:sequence></x:call></x:request></S:Body></S:Envelope>`),
		[]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence><xrpc:element><a b="&#65;&quot;x"><![CDATA[<raw>]]>tail</a></xrpc:element></xrpc:sequence><xrpc:participatingPeers><xrpc:peer uri="xrpc://p1"/></xrpc:participatingPeers></xrpc:response></env:Body></env:Envelope>`),
		[]byte(`<!DOCTYPE x [<!ENTITY y "z">]><env:Envelope><env:Body><env:Fault><env:Code><env:Value>env:Sender</env:Value></env:Code><env:Reason><env:Text xml:lang="en">boom</env:Text></env:Reason></env:Fault></env:Body></env:Envelope>`),
		// multi-byte runes and a comment straddling likely chunk sizes
		[]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="méthode💡" xrpc:method="f"><!-- commentaire éé --><xrpc:sequence><xrpc:atomic-value xsi:type="xs:string">héllo &amp; &#x1F4A1; wörld</xrpc:atomic-value></xrpc:sequence></xrpc:response></env:Body></env:Envelope>`),
	)
	return msgs
}

// assertStreamAgrees decodes msg both ways and requires identical
// outcomes: same error presence, and byte-identical re-encodings.
func assertStreamAgrees(t *testing.T, msg []byte, r io.Reader, label string) {
	t.Helper()
	buffered, errBuf := Decode(msg)
	streamed, errStream := DecodeStream(r)
	if (errBuf == nil) != (errStream == nil) {
		t.Fatalf("%s: decoder disagreement: buffered err=%v, stream err=%v\nmessage:\n%s",
			label, errBuf, errStream, msg)
	}
	if errBuf != nil {
		return
	}
	if got, want := reencode(t, streamed), reencode(t, buffered); !bytes.Equal(got, want) {
		t.Fatalf("%s: streamed decode differs from buffered\nstream: %s\nbuffered: %s", label, got, want)
	}
}

func TestDecodeStreamMatchesDecodeOnFixtures(t *testing.T) {
	for i, msg := range fixtureMessages(t) {
		assertStreamAgrees(t, msg, bytes.NewReader(msg), fmt.Sprintf("fixture %d whole", i))
		assertStreamAgrees(t, msg, iotest.OneByteReader(bytes.NewReader(msg)),
			fmt.Sprintf("fixture %d byte-at-a-time", i))
		for _, size := range []int{2, 3, 7, 16, 61, 4096} {
			assertStreamAgrees(t, msg, &chunkReader{data: msg, size: size},
				fmt.Sprintf("fixture %d chunk=%d", i, size))
		}
	}
}

// TestDecodeStreamEverySplitPoint cuts a small but token-rich envelope
// at every byte boundary: two reads, the seam landing inside tag names,
// attribute values, char refs, the CDATA opener and closer, and
// multi-byte runes.
func TestDecodeStreamEverySplitPoint(t *testing.T) {
	msg := []byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="mé" xrpc:method="f"><xrpc:sequence><xrpc:element><a b="&#65;&amp;x"><![CDATA[<r]]&gt;aw>]]>t&#x1F4A1;l</a></xrpc:element></xrpc:sequence></xrpc:response></env:Body></env:Envelope>`)
	for cut := 1; cut < len(msg); cut++ {
		r := io.MultiReader(bytes.NewReader(msg[:cut]), bytes.NewReader(msg[cut:]))
		assertStreamAgrees(t, msg, r, fmt.Sprintf("split at %d", cut))
	}
}

// TestDecodeStreamTruncated feeds every prefix of an envelope: the
// stream decoder must fail exactly when the buffered decoder fails on
// the same bytes, and never panic.
func TestDecodeStreamTruncated(t *testing.T) {
	msg := fixtureMessages(t)[1] // request with queryID, seqNrs, two calls
	for cut := 0; cut < len(msg); cut++ {
		prefix := msg[:cut]
		_, errBuf := Decode(prefix)
		_, errStream := DecodeStream(&chunkReader{data: prefix, size: 5})
		if (errBuf == nil) != (errStream == nil) {
			t.Fatalf("truncated at %d: buffered err=%v, stream err=%v", cut, errBuf, errStream)
		}
	}
}

// TestDecodeStreamReadError: a transport error mid-envelope surfaces as
// a read error, not a malformed-envelope one.
func TestDecodeStreamReadError(t *testing.T) {
	msg := fixtureMessages(t)[0]
	boom := errors.New("conn reset")
	r := io.MultiReader(bytes.NewReader(msg[:len(msg)/2]), iotest.ErrReader(boom))
	_, err := DecodeStream(r)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("expected wrapped read error, got %v", err)
	}
}

// collectStream walks a ResponseStream to completion and rebuilds the
// equivalent *Response.
func collectStream(rs *ResponseStream) (*Response, error) {
	resp := &Response{Module: rs.Module(), Method: rs.Method()}
	for {
		ok, err := rs.NextSequence()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		var seq xdm.Sequence
		for {
			it, err := rs.NextItem()
			if err != nil {
				return nil, err
			}
			if it == nil {
				break
			}
			seq = append(seq, it)
		}
		resp.Results = append(resp.Results, seq)
	}
	peers, err := rs.Finish()
	if err != nil {
		return nil, err
	}
	resp.Peers = peers
	return resp, nil
}

func TestResponseStreamMatchesDecodeResponse(t *testing.T) {
	msgs := [][]byte{}
	for _, resp := range fixtureResponses(t) {
		msgs = append(msgs, EncodeResponse(resp))
	}
	msgs = append(msgs,
		[]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"/></env:Body></env:Envelope>`),
		[]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence/><xrpc:sequence></xrpc:sequence></xrpc:response></env:Body></env:Envelope>`),
		[]byte(`<env:Envelope><env:Body><junk/><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence><xrpc:element/><xrpc:atomic-value>u</xrpc:atomic-value></xrpc:sequence></xrpc:response><trailing/></env:Body><post/></env:Envelope>`),
	)
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		resp := &Response{Module: "m" + benignText(r), Method: "f"}
		for i := r.Intn(5); i > 0; i-- {
			resp.Results = append(resp.Results, randomSequence(r))
		}
		for i := r.Intn(3); i > 0; i-- {
			resp.Peers = append(resp.Peers, "xrpc://peer/"+benignText(r))
		}
		msgs = append(msgs, EncodeResponse(resp))
	}
	for i, msg := range msgs {
		want, errWant := DecodeResponse(msg)
		for _, size := range []int{1, 7, 64, len(msg)} {
			rs, err := NewResponseStream(&chunkReader{data: msg, size: size})
			var got *Response
			if err == nil {
				got, err = collectStream(rs)
			}
			if (errWant == nil) != (err == nil) {
				t.Fatalf("msg %d chunk=%d: buffered err=%v, stream err=%v", i, size, errWant, err)
			}
			if errWant != nil {
				continue
			}
			if got.Module != want.Module || got.Method != want.Method {
				t.Fatalf("msg %d chunk=%d: header mismatch: got %q/%q want %q/%q",
					i, size, got.Module, got.Method, want.Module, want.Method)
			}
			if gb, wb := EncodeResponse(got), EncodeResponse(want); !bytes.Equal(gb, wb) {
				t.Fatalf("msg %d chunk=%d: streamed response differs\nstream: %s\nbuffered: %s", i, size, gb, wb)
			}
			if fmt.Sprint(got.Peers) != fmt.Sprint(want.Peers) {
				t.Fatalf("msg %d chunk=%d: peers differ: %v vs %v", i, size, got.Peers, want.Peers)
			}
		}
	}
}

// TestResponseStreamPartialConsumption: skipping items and sequences
// midway must not corrupt the walk — Finish still validates and returns
// the peers.
func TestResponseStreamPartialConsumption(t *testing.T) {
	resp := fixtureResponses(t)[0] // 3 results + 2 peers
	msg := EncodeResponse(resp)
	// read only the first sequence's first item, then Finish
	rs, err := NewResponseStream(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := rs.NextSequence(); err != nil || !ok {
		t.Fatalf("NextSequence: %v %v", ok, err)
	}
	if it, err := rs.NextItem(); err != nil || it == nil {
		t.Fatalf("NextItem: %v %v", it, err)
	}
	peers, err := rs.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(peers) != fmt.Sprint(resp.Peers) {
		t.Fatalf("peers after partial read: %v want %v", peers, resp.Peers)
	}
	// NextSequence with unread items auto-discards them
	rs, err = NewResponseStream(bytes.NewReader(msg))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		ok, err := rs.NextSequence()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != len(resp.Results) {
		t.Fatalf("skipping walk saw %d sequences, want %d", n, len(resp.Results))
	}
}

// failAfterWriter errors once n bytes have been written.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.n -= len(p)
	if w.n < 0 {
		return 0, w.err
	}
	return len(p), nil
}

// TestStreamEncoderMatchesBuffered: the sink-writer encoder must emit
// byte-identical envelopes to the buffered one at any chunk size, both
// via Encode*To and via incremental Begin/End composition.
func TestStreamEncoderMatchesBuffered(t *testing.T) {
	reqs := fixtureRequests(t)
	resps := fixtureResponses(t)
	fault := &Fault{Code: "env:Sender", Reason: "r&<>\n"}
	for _, chunk := range []int{1, 7, 64, 32 << 10} {
		for i, req := range reqs {
			var buf bytes.Buffer
			e := NewStreamEncoder(&buf, chunk)
			e.EncodeRequest(req)
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			e.Release()
			if want := EncodeRequest(req); !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("request %d chunk=%d: streamed encode differs\nstream: %s\nbuffered: %s",
					i, chunk, buf.Bytes(), want)
			}
		}
		for i, resp := range resps {
			var buf bytes.Buffer
			if err := func() error {
				e := NewStreamEncoder(&buf, chunk)
				defer e.Release()
				e.EncodeResponse(resp)
				return e.Flush()
			}(); err != nil {
				t.Fatal(err)
			}
			if want := EncodeResponse(resp); !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("response %d chunk=%d: streamed encode differs", i, chunk)
			}
			// incremental composition: the path the scatter-gather merge
			// drives
			buf.Reset()
			e := NewStreamEncoder(&buf, chunk)
			e.BeginResponse(resp.Module, resp.Method)
			for _, seq := range resp.Results {
				e.BeginSequence()
				for _, it := range seq {
					e.EncodeItem(it)
				}
				e.EndSequence()
			}
			e.EndResponse(resp.Peers)
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			e.Release()
			if want := EncodeResponse(resp); !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("response %d chunk=%d: composed encode differs\ncomposed: %s\nbuffered: %s",
					i, chunk, buf.Bytes(), want)
			}
		}
		var buf bytes.Buffer
		if err := EncodeFaultTo(&buf, fault); err != nil {
			t.Fatal(err)
		}
		if want := EncodeFault(fault); !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("fault chunk=%d: streamed encode differs", chunk)
		}
	}
}

func TestStreamEncoderWriteError(t *testing.T) {
	boom := errors.New("sink full")
	w := &failAfterWriter{n: 50, err: boom}
	e := NewStreamEncoder(w, 16)
	e.EncodeResponse(fixtureResponses(t)[1])
	if err := e.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush: want sink error, got %v", err)
	}
	if err := e.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err: want sink error, got %v", err)
	}
	e.Release()
	// a released-and-reacquired encoder must not remember the sink
	e2 := NewEncoder()
	e2.EncodeFault(&Fault{Code: "c", Reason: "r"})
	if err := e2.Err(); err != nil {
		t.Fatalf("fresh encoder carries stale sink error: %v", err)
	}
	e2.Release()
}

func TestResponseStreamFaults(t *testing.T) {
	// a fault message surfaces at NewResponseStream
	msg := EncodeFault(&Fault{Code: "env:Sender", Reason: "nope"})
	_, err := NewResponseStream(bytes.NewReader(msg))
	var f *Fault
	if !errors.As(err, &f) || f.Reason != "nope" {
		t.Fatalf("fault header: got %v", err)
	}
	// a fault after the response element surfaces at Finish (buffered
	// Decode gives it precedence up front; see the ResponseStream doc)
	after := []byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence/></xrpc:response><env:Fault><env:Code><env:Value>env:Receiver</env:Value></env:Code><env:Reason><env:Text>late</env:Text></env:Reason></env:Fault></env:Body></env:Envelope>`)
	if _, err := DecodeResponse(after); err == nil {
		t.Fatal("buffered decoder should also reject response+fault bodies")
	}
	rs, err := NewResponseStream(bytes.NewReader(after))
	if err != nil {
		t.Fatalf("header should pass (fault is later): %v", err)
	}
	_, err = rs.Finish()
	if !errors.As(err, &f) || f.Reason != "late" {
		t.Fatalf("late fault: got %v", err)
	}
	// a request message is rejected like DecodeResponse rejects it
	reqMsg := EncodeRequest(fixtureRequests(t)[0])
	if _, err := NewResponseStream(bytes.NewReader(reqMsg)); err == nil {
		t.Fatal("request accepted as response stream")
	}
	// truncated mid-stream: error, not a short success
	long := EncodeResponse(fixtureResponses(t)[1])
	rs, err = NewResponseStream(bytes.NewReader(long[:len(long)-30]))
	if err == nil {
		if _, err = collectStream(rs); err == nil {
			t.Fatal("truncated response stream completed without error")
		}
	}
}

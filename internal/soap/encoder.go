package soap

import (
	"io"
	"strconv"
	"sync"
	"time"

	"xrpc/internal/xdm"
)

// envelopeHeader is the constant envelope prolog every XRPC message
// starts with; the namespace prefixes are fixed, so the whole prolog is
// one precomputed string.
const envelopeHeader = `<?xml version="1.0" encoding="utf-8"?>` + "\n" +
	`<env:Envelope xmlns:xrpc="` + NSXRPC + `"` + "\n" +
	` xmlns:env="` + NSEnv + `"` + "\n" +
	` xmlns:xs="` + NSXS + `"` + "\n" +
	` xmlns:xsi="` + NSXSI + `"` + "\n" +
	` xsi:schemaLocation="` + SchemaLoc + `">` + "\n" +
	"<env:Body>\n"

const envelopeFooter = "</env:Body>\n</env:Envelope>\n"

// maxPooledBuf bounds the buffers the pool retains: an occasional huge
// message (a multi-MB document parameter) should not pin its buffer
// forever.
const maxPooledBuf = 1 << 20

// Encoder renders SOAP XRPC envelopes into a reusable byte buffer. It is
// the streaming, single-copy wire path: node parameters are serialized
// directly into the buffer via xdm.WriteNode (no intermediate strings),
// and buffers are recycled through a sync.Pool, so steady-state encoding
// allocates nothing beyond buffer growth.
//
// Usage: NewEncoder → Encode{Request,Response,Fault} → Bytes → Release.
// Bytes returns the encoder's internal buffer without copying; it is
// valid until Release. Callers that need the message to outlive the
// encoder copy it (or use the package-level Encode* wrappers, which do
// exactly that one copy).
//
// The encoder also has a sink-writer mode (EncodeTo / NewStreamEncoder):
// with a sink attached, the buffer flushes to it every chunk bytes, so a
// response streams out as it is encoded and the encoder's memory stays
// at one chunk regardless of message size. Both modes run the same
// emission code, so the concatenated chunks are byte-identical to a
// buffered encode. In sink mode Bytes/Copy only see the unflushed tail;
// a write error sticks in Err and turns the remaining writes into
// no-ops.
type Encoder struct {
	buf []byte

	// sink-writer mode
	w     io.Writer
	chunk int
	err   error
}

// DefaultStreamChunk is the flush threshold EncodeTo uses when the
// caller passes chunk <= 0.
const DefaultStreamChunk = 32 << 10

var encoderPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 4096)} },
}

// NewEncoder returns an empty encoder backed by a pooled buffer.
func NewEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.buf = e.buf[:0]
	e.w = nil
	e.chunk = 0
	e.err = nil
	return e
}

// NewStreamEncoder returns a pooled encoder in sink-writer mode:
// encoded bytes flush to w in chunk-sized writes (DefaultStreamChunk if
// chunk <= 0). Finish with Flush, then Release.
func NewStreamEncoder(w io.Writer, chunk int) *Encoder {
	e := NewEncoder()
	e.EncodeTo(w, chunk)
	return e
}

// EncodeTo attaches a sink: from now on the buffer flushes to w
// whenever it reaches chunk bytes. Anything already buffered is
// retained and flushes with the first full chunk.
func (e *Encoder) EncodeTo(w io.Writer, chunk int) {
	if chunk <= 0 {
		chunk = DefaultStreamChunk
	}
	e.w = w
	e.chunk = chunk
	e.err = nil
}

// Flush writes any buffered tail to the sink and reports the first
// write error. No-op in buffered mode.
func (e *Encoder) Flush() error {
	if e.w != nil && len(e.buf) > 0 {
		e.flushChunk()
	}
	return e.err
}

// Err reports the first sink write error.
func (e *Encoder) Err() error { return e.err }

func (e *Encoder) flushChunk() {
	if e.err == nil {
		_, e.err = e.w.Write(e.buf)
	}
	e.buf = e.buf[:0]
}

// maybeFlush spills the buffer once it holds a full chunk. Only the
// bulk append paths check; the few-byte helpers (int, byte) run between
// str calls and ride along.
func (e *Encoder) maybeFlush() {
	if e.w != nil && len(e.buf) >= e.chunk {
		e.flushChunk()
	}
}

// Release returns the encoder to the pool. The slice previously returned
// by Bytes must not be used afterwards.
func (e *Encoder) Release() {
	e.w = nil
	e.chunk = 0
	e.err = nil
	if cap(e.buf) <= maxPooledBuf {
		encoderPool.Put(e)
	}
}

// Bytes returns the encoded message without copying; valid until
// Release. In sink mode: only the unflushed tail.
func (e *Encoder) Bytes() []byte { return e.buf }

// Copy returns a fresh copy of the encoded message, safe to keep after
// Release.
func (e *Encoder) Copy() []byte { return append([]byte(nil), e.buf...) }

// Write implements io.Writer.
func (e *Encoder) Write(p []byte) (int, error) {
	e.buf = append(e.buf, p...)
	e.maybeFlush()
	return len(p), nil
}

// WriteString implements io.StringWriter (and half of xdm.XMLWriter).
func (e *Encoder) WriteString(s string) (int, error) {
	e.buf = append(e.buf, s...)
	e.maybeFlush()
	return len(s), nil
}

// WriteByte implements io.ByteWriter (and half of xdm.XMLWriter).
func (e *Encoder) WriteByte(c byte) error {
	e.buf = append(e.buf, c)
	return nil
}

// str/int append shorthands.
func (e *Encoder) str(s string) {
	e.buf = append(e.buf, s...)
	e.maybeFlush()
}
func (e *Encoder) int(v int64) { e.buf = strconv.AppendInt(e.buf, v, 10) }
func (e *Encoder) byte(c byte) { e.buf = append(e.buf, c) }

// attr appends ` name="value"` with attribute escaping —
// xdm.EscapeAttr, the same table node serialization uses, so a value
// escapes identically whether it travels in an envelope header or
// inside a node tree. The old %q-based header writer produced invalid
// XML for values containing quotes or newlines.
func (e *Encoder) attr(name, value string) {
	e.byte(' ')
	e.str(name)
	e.str(`="`)
	xdm.EscapeAttr(e, value)
	e.byte('"')
}

// escText escapes element text content exactly like the reference
// encoder's escape() (&lt; &gt; &amp; &quot;), keeping the two encoders
// byte-identical on every message.
func (e *Encoder) escText(s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '&':
			rep = "&amp;"
		case '"':
			rep = "&quot;"
		default:
			continue
		}
		e.str(s[last:i])
		e.str(rep)
		last = i + 1
	}
	e.str(s[last:])
}

// EncodeRequest appends the SOAP XRPC request envelope for r.
func (e *Encoder) EncodeRequest(r *Request) {
	e.str(envelopeHeader)
	e.str(`<xrpc:request`)
	e.attr("xrpc:module", r.Module)
	e.attr("xrpc:method", r.Method)
	e.str(` xrpc:arity="`)
	e.int(int64(r.Arity))
	e.byte('"')
	e.attr("xrpc:location", r.Location)
	if r.TraceID != "" {
		e.attr("xrpc:traceID", r.TraceID)
	}
	if r.Updating {
		e.str(` xrpc:updCall="true"`)
	}
	e.str(">\n")
	if r.QueryID != nil {
		e.str(`<xrpc:queryID`)
		e.attr("xrpc:host", r.QueryID.Host)
		e.str(` xrpc:timestamp="`)
		e.buf = r.QueryID.Timestamp.UTC().AppendFormat(e.buf, time.RFC3339Nano)
		e.str(`" xrpc:timeout="`)
		e.int(int64(r.QueryID.Timeout))
		e.str(`">`)
		e.escText(r.QueryID.ID)
		e.str("</xrpc:queryID>\n")
	}
	for ci, call := range r.Calls {
		if r.SeqNrs != nil {
			e.str(`<xrpc:call xrpc:seqNr="`)
			e.int(r.SeqNrs[ci])
			e.str("\">\n")
		} else {
			e.str("<xrpc:call>\n")
		}
		var refs [][]*NodeRef
		if r.ByFragment {
			refs, _ = CompressCall(call)
		}
		for pi, param := range call {
			if refs == nil {
				e.sequence(param)
				continue
			}
			e.str("<xrpc:sequence>")
			for ii, it := range param {
				e.itemRef(it, refs[pi][ii])
			}
			e.str("</xrpc:sequence>\n")
		}
		e.str("</xrpc:call>\n")
	}
	e.str("</xrpc:request>\n")
	e.str(envelopeFooter)
}

// EncodeResponse appends the SOAP XRPC response envelope for r. It is
// built from the Begin/End framing methods below, so a response
// composed incrementally (the streaming scatter-gather merge) is
// byte-identical to a buffered encode of the same results by
// construction.
func (e *Encoder) EncodeResponse(r *Response) {
	e.BeginResponse(r.Module, r.Method)
	n := len(r.Results)
	if len(r.Raw) > n {
		n = len(r.Raw)
	}
	for i := 0; i < n; i++ {
		if i < len(r.Raw) && r.Raw[i] != nil {
			e.RawSequence(r.Raw[i])
		} else {
			e.sequence(r.Results[i])
		}
	}
	e.EndResponse(r.Peers)
}

// BeginResponse opens a response envelope: header through the
// <xrpc:response> start tag. Follow with BeginSequence/EncodeItem/
// EndSequence per result, then EndResponse.
func (e *Encoder) BeginResponse(module, method string) {
	e.str(envelopeHeader)
	e.str(`<xrpc:response`)
	e.attr("xrpc:module", module)
	e.attr("xrpc:method", method)
	e.str(">\n")
}

// BeginSequence opens one result sequence.
func (e *Encoder) BeginSequence() { e.str("<xrpc:sequence>") }

// EncodeItem appends one item to the open sequence.
func (e *Encoder) EncodeItem(it xdm.Item) { e.item(it) }

// EndSequence closes the open result sequence.
func (e *Encoder) EndSequence() { e.str("</xrpc:sequence>\n") }

// RawSequence splices a pre-serialized result sequence — bytes
// previously produced by BeginSequence/EncodeItem/EndSequence — into
// the envelope verbatim (the cache-hit fast path).
func (e *Encoder) RawSequence(b []byte) {
	e.buf = append(e.buf, b...)
	e.maybeFlush()
}

// EndResponse closes the response envelope, appending the
// participatingPeers block when peers is non-empty.
func (e *Encoder) EndResponse(peers []string) {
	if len(peers) > 0 {
		e.str("<xrpc:participatingPeers>\n")
		for _, p := range peers {
			e.str(`<xrpc:peer`)
			e.attr("uri", p)
			e.str("/>\n")
		}
		e.str("</xrpc:participatingPeers>\n")
	}
	e.str("</xrpc:response>\n")
	e.str(envelopeFooter)
}

// EncodeFault appends a SOAP Fault envelope for f.
func (e *Encoder) EncodeFault(f *Fault) {
	e.str(envelopeHeader)
	e.str("<env:Fault>\n<env:Code><env:Value>")
	e.escText(f.Code)
	e.str("</env:Value></env:Code>\n<env:Reason>\n")
	e.str(`<env:Text xml:lang="en">`)
	e.escText(f.Reason)
	e.str("</env:Text>\n</env:Reason>\n</env:Fault>\n")
	e.str(envelopeFooter)
}

// sequence is s2n (§2.2): the SOAP representation of an XDM sequence.
func (e *Encoder) sequence(seq xdm.Sequence) {
	e.BeginSequence()
	for _, it := range seq {
		e.item(it)
	}
	e.EndSequence()
}

func (e *Encoder) item(it xdm.Item) {
	switch v := it.(type) {
	case *xdm.Node:
		switch v.Kind {
		case xdm.ElementNode:
			e.str("<xrpc:element>")
			xdm.WriteNode(e, v)
			e.str("</xrpc:element>")
		case xdm.DocumentNode:
			e.str("<xrpc:document>")
			xdm.WriteNode(e, v)
			e.str("</xrpc:document>")
		case xdm.AttributeNode:
			// serialized inside the wrapper: <xrpc:attribute x="y"/>
			e.str("<xrpc:attribute ")
			xdm.WriteNode(e, v)
			e.str("/>")
		case xdm.TextNode:
			e.str("<xrpc:text>")
			e.escText(v.Value)
			e.str("</xrpc:text>")
		case xdm.CommentNode:
			e.str("<xrpc:comment>")
			e.escText(v.Value)
			e.str("</xrpc:comment>")
		case xdm.PINode:
			e.str("<xrpc:pi")
			e.attr("xrpc:target", v.Name)
			e.byte('>')
			e.escText(v.Value)
			e.str("</xrpc:pi>")
		}
	default:
		e.str("<xrpc:atomic-value")
		e.attr("xsi:type", it.TypeName())
		e.byte('>')
		e.escText(it.StringValue())
		e.str("</xrpc:atomic-value>")
	}
}

// itemRef writes either the full item or a call-by-fragment nodeid
// reference.
func (e *Encoder) itemRef(it xdm.Item, ref *NodeRef) {
	if ref == nil {
		e.item(it)
		return
	}
	e.str(`<xrpc:element xrpc:nodeid="p`)
	e.int(int64(ref.Param))
	e.byte('.')
	e.int(int64(ref.Item))
	e.byte(':')
	e.int(int64(ref.Ord))
	e.str(`"/>`)
}

// ------------------------------------------------- compatibility wrappers

// EncodeRequest renders the request as a SOAP XRPC message. Thin wrapper
// over a pooled Encoder: build into a recycled buffer, one copy out.
func EncodeRequest(r *Request) []byte {
	e := NewEncoder()
	e.EncodeRequest(r)
	out := e.Copy()
	e.Release()
	return out
}

// EncodeResponse renders the response message.
func EncodeResponse(r *Response) []byte {
	e := NewEncoder()
	e.EncodeResponse(r)
	out := e.Copy()
	e.Release()
	return out
}

// EncodeFault renders a SOAP Fault message.
func EncodeFault(f *Fault) []byte {
	e := NewEncoder()
	e.EncodeFault(f)
	out := e.Copy()
	e.Release()
	return out
}

// EncodeRequestTo streams the request envelope to w in chunks.
func EncodeRequestTo(w io.Writer, r *Request) error {
	e := NewStreamEncoder(w, 0)
	e.EncodeRequest(r)
	err := e.Flush()
	e.Release()
	return err
}

// EncodeResponseTo streams the response envelope to w in chunks: the
// same bytes EncodeResponse produces, without ever materializing them.
func EncodeResponseTo(w io.Writer, r *Response) error {
	e := NewStreamEncoder(w, 0)
	e.EncodeResponse(r)
	err := e.Flush()
	e.Release()
	return err
}

// EncodeFaultTo streams a SOAP Fault envelope to w.
func EncodeFaultTo(w io.Writer, f *Fault) error {
	e := NewStreamEncoder(w, 0)
	e.EncodeFault(f)
	err := e.Flush()
	e.Release()
	return err
}

package soap

import (
	"fmt"
	"strings"
	"time"

	"xrpc/internal/xdm"
)

// This file preserves the seed's strings.Builder-based encoder as an
// executable reference, the same way internal/algebra keeps its
// row-store (rowref.go). The pooled Encoder (encoder.go) is the
// production wire path; differential tests pin the two byte-identical on
// every message, and `xrpcbench -table wire` measures the difference.
//
// Known historical quirk kept on purpose: header attributes are written
// with %q, which backslash-escapes quotes and newlines instead of using
// XML character references — invalid XML for hostile attribute values.
// The production encoder routes every attribute through escAttr instead;
// the two paths are byte-identical on well-formed values.

func envelopeOpenRef(b *strings.Builder) {
	b.WriteString(`<?xml version="1.0" encoding="utf-8"?>` + "\n")
	b.WriteString(`<env:Envelope xmlns:xrpc="` + NSXRPC + `"` + "\n")
	b.WriteString(` xmlns:env="` + NSEnv + `"` + "\n")
	b.WriteString(` xmlns:xs="` + NSXS + `"` + "\n")
	b.WriteString(` xmlns:xsi="` + NSXSI + `"` + "\n")
	b.WriteString(` xsi:schemaLocation="` + SchemaLoc + `">` + "\n")
	b.WriteString("<env:Body>\n")
}

func envelopeCloseRef(b *strings.Builder) {
	b.WriteString("</env:Body>\n</env:Envelope>\n")
}

// EncodeRequestRef is the reference (pre-streaming) request encoder.
func EncodeRequestRef(r *Request) []byte {
	var b strings.Builder
	envelopeOpenRef(&b)
	fmt.Fprintf(&b, `<xrpc:request xrpc:module=%q xrpc:method=%q xrpc:arity="%d" xrpc:location=%q`,
		r.Module, r.Method, r.Arity, r.Location)
	if r.TraceID != "" {
		fmt.Fprintf(&b, ` xrpc:traceID=%q`, r.TraceID)
	}
	if r.Updating {
		b.WriteString(` xrpc:updCall="true"`)
	}
	b.WriteString(">\n")
	if r.QueryID != nil {
		fmt.Fprintf(&b, `<xrpc:queryID xrpc:host=%q xrpc:timestamp=%q xrpc:timeout="%d">%s</xrpc:queryID>`+"\n",
			r.QueryID.Host, r.QueryID.Timestamp.UTC().Format(time.RFC3339Nano),
			r.QueryID.Timeout, escape(r.QueryID.ID))
	}
	for ci, call := range r.Calls {
		if r.SeqNrs != nil {
			fmt.Fprintf(&b, `<xrpc:call xrpc:seqNr="%d">`+"\n", r.SeqNrs[ci])
		} else {
			b.WriteString("<xrpc:call>\n")
		}
		var refs [][]*NodeRef
		if r.ByFragment {
			refs, _ = CompressCall(call)
		}
		for pi, param := range call {
			if refs == nil {
				writeSequence(&b, param)
				continue
			}
			b.WriteString("<xrpc:sequence>")
			for ii, it := range param {
				writeItemRef(&b, it, refs[pi][ii])
			}
			b.WriteString("</xrpc:sequence>\n")
		}
		b.WriteString("</xrpc:call>\n")
	}
	b.WriteString("</xrpc:request>\n")
	envelopeCloseRef(&b)
	return []byte(b.String())
}

// EncodeResponseRef is the reference (pre-streaming) response encoder.
func EncodeResponseRef(r *Response) []byte {
	var b strings.Builder
	envelopeOpenRef(&b)
	fmt.Fprintf(&b, `<xrpc:response xrpc:module=%q xrpc:method=%q>`+"\n", r.Module, r.Method)
	for _, seq := range r.Results {
		writeSequence(&b, seq)
	}
	if len(r.Peers) > 0 {
		b.WriteString("<xrpc:participatingPeers>\n")
		for _, p := range r.Peers {
			fmt.Fprintf(&b, `<xrpc:peer uri=%q/>`+"\n", p)
		}
		b.WriteString("</xrpc:participatingPeers>\n")
	}
	b.WriteString("</xrpc:response>\n")
	envelopeCloseRef(&b)
	return []byte(b.String())
}

// EncodeFaultRef is the reference (pre-streaming) fault encoder.
func EncodeFaultRef(f *Fault) []byte {
	var b strings.Builder
	envelopeOpenRef(&b)
	b.WriteString("<env:Fault>\n<env:Code><env:Value>")
	b.WriteString(escape(f.Code))
	b.WriteString("</env:Value></env:Code>\n<env:Reason>\n")
	b.WriteString(`<env:Text xml:lang="en">`)
	b.WriteString(escape(f.Reason))
	b.WriteString("</env:Text>\n</env:Reason>\n</env:Fault>\n")
	envelopeCloseRef(&b)
	return []byte(b.String())
}

// WriteSequence exposes the s2n marshaling (sequence -> <xrpc:sequence>
// XML) for generated queries and tests.
func WriteSequence(b *strings.Builder, seq xdm.Sequence) { writeSequence(b, seq) }

// writeSequence is s2n (§2.2): the SOAP representation of an XDM
// sequence.
func writeSequence(b *strings.Builder, seq xdm.Sequence) {
	b.WriteString("<xrpc:sequence>")
	for _, it := range seq {
		writeItem(b, it)
	}
	b.WriteString("</xrpc:sequence>\n")
}

func writeItem(b *strings.Builder, it xdm.Item) {
	switch v := it.(type) {
	case *xdm.Node:
		switch v.Kind {
		case xdm.ElementNode:
			b.WriteString("<xrpc:element>")
			b.WriteString(xdm.SerializeNode(v))
			b.WriteString("</xrpc:element>")
		case xdm.DocumentNode:
			b.WriteString("<xrpc:document>")
			b.WriteString(xdm.SerializeNode(v))
			b.WriteString("</xrpc:document>")
		case xdm.AttributeNode:
			// serialized inside the wrapper: <xrpc:attribute x="y"/>
			fmt.Fprintf(b, `<xrpc:attribute %s=%q/>`, v.Name, v.Value)
		case xdm.TextNode:
			b.WriteString("<xrpc:text>")
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:text>")
		case xdm.CommentNode:
			b.WriteString("<xrpc:comment>")
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:comment>")
		case xdm.PINode:
			fmt.Fprintf(b, `<xrpc:pi xrpc:target=%q>`, v.Name)
			b.WriteString(escape(v.Value))
			b.WriteString("</xrpc:pi>")
		}
	default:
		fmt.Fprintf(b, `<xrpc:atomic-value xsi:type=%q>`, it.TypeName())
		b.WriteString(escape(it.StringValue()))
		b.WriteString("</xrpc:atomic-value>")
	}
}

// writeItemRef writes either the full item or a nodeid reference.
func writeItemRef(b *strings.Builder, it xdm.Item, ref *NodeRef) {
	if ref == nil {
		writeItem(b, it)
		return
	}
	fmt.Fprintf(b, `<xrpc:element xrpc:nodeid=%q/>`, ref.String())
}

func escape(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '&':
			b.WriteString("&amp;")
		case '"':
			b.WriteString("&quot;")
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

package soap

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the streaming decoder. Properties:
//
//  1. Decode never panics, whatever the input.
//  2. decode∘encode is a fixpoint on valid messages: anything that
//     decodes successfully re-encodes to a message that decodes again
//     and re-encodes byte-identically (the first round may normalize —
//     line endings, seqNr padding, atomic canonicalization — but the
//     encoded form is stable from then on).
//
// The corpus is seeded with every encoded fixture from the round-trip
// and differential tests. A short -fuzztime smoke run is part of
// `make ci`; run `go test -fuzz=FuzzDecode ./internal/soap` for a real
// session.
func FuzzDecode(f *testing.F) {
	for _, req := range fixtureRequests(f) {
		f.Add(EncodeRequest(req))
	}
	for _, resp := range fixtureResponses(f) {
		f.Add(EncodeResponse(resp))
	}
	f.Add(EncodeFault(&Fault{Code: "env:Sender", Reason: "could not load module!"}))
	f.Add(EncodeFault(&Fault{Code: "env:Receiver", Reason: " spaced \n reason "}))
	f.Add([]byte(`<?xml version="1.0"?><S:Envelope xmlns:S="e"><S:Body><x:request x:module='m' x:method='f' x:arity='1' x:location='l' xmlns:x="u"><x:call><x:sequence><x:atomic-value xsi:type="xs:integer" xmlns:xsi="i">7</x:atomic-value></x:sequence></x:call></x:request></S:Body></S:Envelope>`))
	f.Add([]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence><xrpc:element><a b="&#65;"><![CDATA[<raw>]]></a></xrpc:element></xrpc:sequence></xrpc:response></env:Body></env:Envelope>`))
	f.Add([]byte(`<!DOCTYPE x [<!ENTITY y "z">]><env:Envelope><env:Body/></env:Envelope>`))
	// traceID header attribute: hand-written form plus the empty-value
	// edge (decodes to "", re-encodes without the attribute — fixpoint
	// after one normalization round)
	f.Add([]byte(`<env:Envelope><env:Body><xrpc:request xrpc:module="m" xrpc:method="f" xrpc:arity="0" xrpc:location="l" xrpc:traceID="t-deadbeef00000000"><xrpc:call/></xrpc:request></env:Body></env:Envelope>`))
	f.Add([]byte(`<env:Envelope><env:Body><xrpc:request xrpc:module="m" xrpc:method="f" xrpc:arity="0" xrpc:location="l" xrpc:traceID=""><xrpc:call/></xrpc:request></env:Body></env:Envelope>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data) // must not panic
		if err != nil {
			return
		}
		once := reencodeFuzz(t, m)
		m2, err := Decode(once)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v\noriginal: %q\nre-encoded: %q", err, data, once)
		}
		twice := reencodeFuzz(t, m2)
		if !bytes.Equal(once, twice) {
			t.Fatalf("decode∘encode is not a fixpoint\nfirst:  %q\nsecond: %q", once, twice)
		}
	})
}

// FuzzDecodeStream feeds the same corpus through the incremental
// decoder with an adversarial chunking derived from the input, and
// requires it to agree with the buffered decoder byte for byte: same
// accept/reject outcome, and identical re-encodings on success. This is
// the differential oracle for the refill paths (grow/compact/find) the
// buffered mode never exercises.
func FuzzDecodeStream(f *testing.F) {
	for _, req := range fixtureRequests(f) {
		f.Add(EncodeRequest(req), uint8(1))
	}
	for _, resp := range fixtureResponses(f) {
		f.Add(EncodeResponse(resp), uint8(3))
	}
	f.Add(EncodeFault(&Fault{Code: "env:Sender", Reason: "could not load module!"}), uint8(0))
	f.Add([]byte(`<?xml version="1.0"?><S:Envelope xmlns:S="e"><S:Body><x:request x:module='m' x:method='f' x:arity='1' x:location='l' xmlns:x="u"><x:call><x:sequence><x:atomic-value xsi:type="xs:integer" xmlns:xsi="i">7</x:atomic-value></x:sequence></x:call></x:request></S:Body></S:Envelope>`), uint8(2))
	f.Add([]byte(`<env:Envelope><env:Body><xrpc:response xrpc:module="m" xrpc:method="f"><xrpc:sequence><xrpc:element><a b="&#65;"><![CDATA[<raw>]]></a></xrpc:element></xrpc:sequence></xrpc:response></env:Body></env:Envelope>`), uint8(7))
	f.Add([]byte(`<!DOCTYPE x [<!ENTITY y "z">]><env:Envelope><env:Body/></env:Envelope>`), uint8(255))
	f.Add([]byte(`<env:Envelope><env:Body><xrpc:request xrpc:module="m" xrpc:method="f" xrpc:arity="0" xrpc:location="l" xrpc:traceID="t-deadbeef00000000"><xrpc:call/></xrpc:request></env:Body></env:Envelope>`), uint8(5))

	f.Fuzz(func(t *testing.T, data []byte, size uint8) {
		chunk := int(size)%64 + 1
		buffered, errBuf := Decode(data)
		streamed, errStream := DecodeStream(&chunkReader{data: data, size: chunk}) // must not panic
		if (errBuf == nil) != (errStream == nil) {
			t.Fatalf("decoder disagreement (chunk=%d): buffered err=%v, stream err=%v\ninput: %q",
				chunk, errBuf, errStream, data)
		}
		if errBuf != nil {
			return
		}
		if got, want := reencodeFuzz(t, streamed), reencodeFuzz(t, buffered); !bytes.Equal(got, want) {
			t.Fatalf("streamed decode differs (chunk=%d)\nstream: %q\nbuffered: %q\ninput: %q",
				chunk, got, want, data)
		}
	})
}

func reencodeFuzz(t *testing.T, m *Message) []byte {
	t.Helper()
	switch {
	case m.Request != nil:
		return EncodeRequest(m.Request)
	case m.Response != nil:
		return EncodeResponse(m.Response)
	case m.Fault != nil:
		return EncodeFault(m.Fault)
	}
	t.Fatal("decoded message has no content")
	return nil
}

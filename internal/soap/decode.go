package soap

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"xrpc/internal/xdm"
)

// decode.go is the streaming envelope decoder: it drives the
// pull-tokenizer (scan.go) through the XRPC envelope grammar and builds
// the Message directly — no DOM of the envelope is ever materialized.
// xdm trees are constructed only for actual node-typed parameters and
// results. The semantics are pinned to the DOM reference decoder
// (DecodeDOM) by round-trip tests on every message fixture and a
// differential test on randomized messages.

// Decode parses a SOAP XRPC message of any kind.
func Decode(data []byte) (*Message, error) {
	d := &decoder{sc: scanner{data: data}}
	return d.decodeMessage()
}

// DecodeRequest parses and requires a request message.
func DecodeRequest(data []byte) (*Request, error) {
	m, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Request == nil {
		return nil, fmt.Errorf("soap: message is not a request")
	}
	return m.Request, nil
}

// DecodeResponse parses a response message, converting faults into *Fault
// errors.
func DecodeResponse(data []byte) (*Response, error) {
	m, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Fault != nil {
		return nil, m.Fault
	}
	if m.Response == nil {
		return nil, fmt.Errorf("soap: message is not a response")
	}
	return m.Response, nil
}

type decoder struct {
	sc scanner
	// arena slab-allocates the xdm nodes of decoded node-typed values:
	// one allocation per 64 nodes instead of one each.
	arena xdm.Arena
}

// attrLocalScan reads an attribute of the current start tag by local
// name, any prefix (the streaming counterpart of attrLocal).
func (d *decoder) attrLocalScan(local string) string {
	for _, a := range d.sc.attrs {
		if localName(a.name) == local {
			return a.value
		}
	}
	return ""
}

// attrExactScan reads an attribute by its exact (prefixed) name — the
// DOM decoder matched xsi:type and uri exactly, so the streaming decoder
// does too.
func (d *decoder) attrExactScan(name string) (string, bool) {
	for _, a := range d.sc.attrs {
		if a.name == name {
			return a.value, true
		}
	}
	return "", false
}

func (d *decoder) decodeMessage() (*Message, error) {
	// locate the Envelope among the top-level elements
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case tokEOF:
			return nil, fmt.Errorf("soap: missing Envelope")
		case tokStart:
			if localName(d.sc.name) == "Envelope" {
				msg, err := d.decodeEnvelope()
				if err != nil {
					return nil, err
				}
				// validate the remainder of the document (balance,
				// well-formed markup), as parsing the whole DOM did
				if err := d.drain(); err != nil {
					return nil, err
				}
				return msg, nil
			}
			if err := d.skipElement(); err != nil {
				return nil, err
			}
		default:
			// prolog text, comments, PIs (incl. the XML declaration)
		}
	}
}

// decodeEnvelope handles the children of env:Envelope: the first Body
// child carries the message.
func (d *decoder) decodeEnvelope() (*Message, error) {
	if d.sc.selfClose {
		return nil, fmt.Errorf("soap: missing Body")
	}
	target := d.sc.depth - 1
	var msg *Message
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case tokStart:
			if msg == nil && localName(d.sc.name) == "Body" {
				if msg, err = d.decodeBody(); err != nil {
					return nil, err
				}
				continue
			}
			if err := d.skipElement(); err != nil {
				return nil, err
			}
		case tokEnd:
			if d.sc.depth == target {
				if msg == nil {
					return nil, fmt.Errorf("soap: missing Body")
				}
				return msg, nil
			}
		}
	}
}

// decodeBody scans the Body's children. Mirroring the DOM decoder's
// lookup order, a Fault wins over a request, which wins over a response,
// regardless of document order; the first child of each kind counts.
func (d *decoder) decodeBody() (*Message, error) {
	var (
		req   *Request
		resp  *Response
		fault *Fault
	)
	if !d.sc.selfClose {
		target := d.sc.depth - 1
		for {
			tok, err := d.sc.next()
			if err != nil {
				return nil, err
			}
			if tok == tokEnd {
				if d.sc.depth == target {
					break
				}
				continue
			}
			if tok != tokStart {
				continue
			}
			switch local := localName(d.sc.name); {
			case local == "Fault" && fault == nil:
				if fault, err = d.decodeFault(); err != nil {
					return nil, err
				}
			case local == "request" && req == nil:
				if req, err = d.decodeRequest(); err != nil {
					return nil, err
				}
			case local == "response" && resp == nil:
				if resp, err = d.decodeResponse(); err != nil {
					return nil, err
				}
			default:
				if err := d.skipElement(); err != nil {
					return nil, err
				}
			}
		}
	}
	switch {
	case fault != nil:
		return &Message{Fault: fault}, nil
	case req != nil:
		return &Message{Request: req}, nil
	case resp != nil:
		return &Message{Response: resp}, nil
	}
	return nil, fmt.Errorf("soap: body contains no request, response or fault")
}

func (d *decoder) decodeRequest() (*Request, error) {
	req := &Request{
		Module:   d.attrLocalScan("module"),
		Method:   d.attrLocalScan("method"),
		Location: d.attrLocalScan("location"),
		Updating: d.attrLocalScan("updCall") == "true",
		TraceID:  d.attrLocalScan("traceID"),
	}
	scanIntInto(d.attrLocalScan("arity"), &req.Arity)
	if d.sc.selfClose {
		return req, nil
	}
	target := d.sc.depth - 1
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case tokEnd:
			if d.sc.depth == target {
				if req.SeqNrs != nil {
					for len(req.SeqNrs) < len(req.Calls) {
						req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
					}
				}
				return req, nil
			}
		case tokStart:
			switch localName(d.sc.name) {
			case "queryID":
				if req.QueryID != nil {
					if err := d.skipElement(); err != nil {
						return nil, err
					}
					continue
				}
				qid := &QueryID{Host: d.attrLocalScan("host")}
				if ts, err := time.Parse(time.RFC3339Nano, d.attrLocalScan("timestamp")); err == nil {
					qid.Timestamp = ts
				}
				scanIntInto(d.attrLocalScan("timeout"), &qid.Timeout)
				if qid.ID, err = d.elementText(); err != nil {
					return nil, err
				}
				req.QueryID = qid
			case "call":
				if err := d.decodeCall(req); err != nil {
					return nil, err
				}
			default:
				if err := d.skipElement(); err != nil {
					return nil, err
				}
			}
		}
	}
}

// decodeCall decodes one <xrpc:call> element and appends it to req.
func (d *decoder) decodeCall(req *Request) error {
	seqNr := d.attrLocalScan("seqNr")
	var params []xdm.Sequence
	if !d.sc.selfClose {
		target := d.sc.depth - 1
		for {
			tok, err := d.sc.next()
			if err != nil {
				return err
			}
			if tok == tokEnd {
				if d.sc.depth == target {
					break
				}
				continue
			}
			if tok != tokStart {
				continue
			}
			if localName(d.sc.name) != "sequence" {
				if err := d.skipElement(); err != nil {
					return err
				}
				continue
			}
			seq, err := d.decodeSequence()
			if err != nil {
				return err
			}
			params = append(params, seq)
		}
	}
	if req.Arity > 0 && len(params) != req.Arity {
		return fmt.Errorf("soap: call has %d parameters, arity is %d", len(params), req.Arity)
	}
	if err := ResolveNodeRefs(params); err != nil {
		return err
	}
	if seqNr != "" {
		var v int64
		scanInt64Into(seqNr, &v)
		// pad earlier untagged calls with their index
		for len(req.SeqNrs) < len(req.Calls) {
			req.SeqNrs = append(req.SeqNrs, int64(len(req.SeqNrs)))
		}
		req.SeqNrs = append(req.SeqNrs, v)
	}
	req.Calls = append(req.Calls, params)
	return nil
}

// decodeSequence is the streaming n2s (§2.2): it converts one
// <xrpc:sequence> element into an XDM sequence with the same
// call-by-value guarantees as the DOM DecodeSequence — node items come
// out as fresh sealed fragments that cannot see the envelope.
func (d *decoder) decodeSequence() (xdm.Sequence, error) {
	var out xdm.Sequence
	if d.sc.selfClose {
		return out, nil
	}
	target := d.sc.depth - 1
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == target {
				return out, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		if out, err = d.decodeSequenceItem(out); err != nil {
			return nil, err
		}
	}
}

// decodeSequenceItem consumes the sequence-item element at the current
// start token and appends the item(s) it denotes to out. One wrapper
// may contribute zero items (an empty <xrpc:element/>) or several (an
// <xrpc:attribute> with multiple attributes), which is why the decoded
// items are appended rather than returned singly. Shared by the
// buffered decoder (decodeSequence) and the incremental ResponseStream.
func (d *decoder) decodeSequenceItem(out xdm.Sequence) (xdm.Sequence, error) {
	switch localName(d.sc.name) {
	case "atomic-value":
		typ, _ := d.attrExactScan("xsi:type")
		if typ == "" {
			typ = "xs:untypedAtomic"
		}
		sv, err := d.elementText()
		if err != nil {
			return nil, err
		}
		item, err := xdm.CastAtomic(xdm.String(sv), typ)
		if err != nil {
			return nil, fmt.Errorf("soap: bad atomic value %q as %s: %w", sv, typ, err)
		}
		out = append(out, item)
	case "element":
		ref := d.attrLocalScan("nodeid")
		elems, err := d.childElements()
		if err != nil {
			return nil, err
		}
		if ref != "" && len(elems) == 0 {
			// call-by-fragment placeholder, resolved after all
			// parameters of the call are decoded
			ph := d.arena.Element(nodeRefPlaceholder)
			ph.Value = ref
			out = append(out, ph)
			return out, nil
		}
		for _, el := range elems {
			out = append(out, el)
		}
	case "document":
		doc, err := d.buildDocument()
		if err != nil {
			return nil, err
		}
		out = append(out, doc)
	case "attribute":
		for _, a := range d.sc.attrs {
			attr := d.arena.Attribute(a.name, a.value)
			attr.Seal()
			out = append(out, attr)
		}
		if err := d.skipElement(); err != nil {
			return nil, err
		}
	case "text":
		sv, err := d.elementText()
		if err != nil {
			return nil, err
		}
		t := d.arena.Text(sv)
		t.Seal()
		out = append(out, t)
	case "comment":
		sv, err := d.elementText()
		if err != nil {
			return nil, err
		}
		c := d.arena.Comment(sv)
		c.Seal()
		out = append(out, c)
	case "pi":
		pitarget := d.attrLocalScan("target")
		sv, err := d.elementText()
		if err != nil {
			return nil, err
		}
		pi := d.arena.PI(pitarget, sv)
		pi.Seal()
		out = append(out, pi)
	default:
		return nil, fmt.Errorf("soap: unknown sequence item element %q", d.sc.name)
	}
	return out, nil
}

func (d *decoder) decodeResponse() (*Response, error) {
	resp := &Response{
		Module: d.attrLocalScan("module"),
		Method: d.attrLocalScan("method"),
	}
	if d.sc.selfClose {
		return resp, nil
	}
	target := d.sc.depth - 1
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == target {
				return resp, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		switch localName(d.sc.name) {
		case "sequence":
			seq, err := d.decodeSequence()
			if err != nil {
				return nil, err
			}
			resp.Results = append(resp.Results, seq)
		case "participatingPeers":
			if resp.Peers, err = d.decodePeers(resp.Peers); err != nil {
				return nil, err
			}
		default:
			if err := d.skipElement(); err != nil {
				return nil, err
			}
		}
	}
}

// decodePeers consumes an <xrpc:participatingPeers> element whose start
// tag is current, appending each peer child's uri attribute.
func (d *decoder) decodePeers(peers []string) ([]string, error) {
	if d.sc.selfClose {
		return peers, nil
	}
	target := d.sc.depth - 1
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == target {
				return peers, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		if uri, ok := d.attrExactScan("uri"); ok {
			peers = append(peers, uri)
		}
		if err := d.skipElement(); err != nil {
			return nil, err
		}
	}
}

func (d *decoder) decodeFault() (*Fault, error) {
	fault := &Fault{Code: "env:Receiver"}
	if d.sc.selfClose {
		return fault, nil
	}
	target := d.sc.depth - 1
	seenCode, seenReason := false, false
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == target {
				return fault, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		switch local := localName(d.sc.name); {
		case local == "Code" && !seenCode:
			seenCode = true
			if d.sc.selfClose {
				continue
			}
			ctarget := d.sc.depth - 1
			seenValue := false
			for {
				tok, err := d.sc.next()
				if err != nil {
					return nil, err
				}
				if tok == tokEnd {
					if d.sc.depth == ctarget {
						break
					}
					continue
				}
				if tok != tokStart {
					continue
				}
				if localName(d.sc.name) == "Value" && !seenValue {
					seenValue = true
					sv, err := d.elementText()
					if err != nil {
						return nil, err
					}
					fault.Code = strings.TrimSpace(sv)
					continue
				}
				if err := d.skipElement(); err != nil {
					return nil, err
				}
			}
		case local == "Reason" && !seenReason:
			seenReason = true
			sv, err := d.elementText()
			if err != nil {
				return nil, err
			}
			fault.Reason = strings.TrimSpace(sv)
		default:
			if err := d.skipElement(); err != nil {
				return nil, err
			}
		}
	}
}

// ------------------------------------------------------------ tree build

// childElements builds the element children of the current element as
// fresh sealed trees (text and other non-element content between them is
// dropped, as the DOM decoder's ChildElements did).
func (d *decoder) childElements() ([]*xdm.Node, error) {
	if d.sc.selfClose {
		return nil, nil
	}
	target := d.sc.depth - 1
	var out []*xdm.Node
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		switch tok {
		case tokEnd:
			if d.sc.depth == target {
				return out, nil
			}
		case tokStart:
			n, err := d.buildElement()
			if err != nil {
				return nil, err
			}
			n.Seal()
			out = append(out, n)
		}
	}
}

// buildDocument rebuilds an <xrpc:document> wrapper's content as a fresh
// document node: all children (elements, text, comments, PIs) are kept,
// matching the DOM decoder's clone of v.Children.
func (d *decoder) buildDocument() (*xdm.Node, error) {
	doc := d.arena.Document("")
	if d.sc.selfClose {
		doc.Seal()
		return doc, nil
	}
	target := d.sc.depth - 1
	if err := d.buildChildren(doc, target); err != nil {
		return nil, err
	}
	doc.Seal()
	return doc, nil
}

// buildElement builds the element at the current start token (with its
// whole subtree) into a fresh, unsealed tree.
func (d *decoder) buildElement() (*xdm.Node, error) {
	el := d.arena.Element(d.sc.name)
	for _, a := range d.sc.attrs {
		el.SetAttr(d.arena.Attribute(a.name, a.value))
	}
	if d.sc.selfClose {
		return el, nil
	}
	if err := d.buildChildren(el, d.sc.depth-1); err != nil {
		return nil, err
	}
	return el, nil
}

// buildChildren appends the token stream to parent until the scanner
// depth returns to target. Iterative (explicit stack), so arbitrarily
// deep documents cannot overflow the Go stack.
func (d *decoder) buildChildren(parent *xdm.Node, target int) error {
	cur := parent
	var stack []*xdm.Node
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		switch tok {
		case tokStart:
			child := d.arena.Element(d.sc.name)
			for _, a := range d.sc.attrs {
				child.SetAttr(d.arena.Attribute(a.name, a.value))
			}
			cur.AppendChild(child)
			if !d.sc.selfClose {
				stack = append(stack, cur)
				cur = child
			}
		case tokEnd:
			if d.sc.depth == target {
				return nil
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		case tokText:
			v, err := d.sc.textValue()
			if err != nil {
				return err
			}
			// merge adjacent text (CDATA boundaries), like the reference
			// parser
			if n := len(cur.Children); n > 0 && cur.Children[n-1].Kind == xdm.TextNode {
				cur.Children[n-1].Value += v
				continue
			}
			cur.AppendChild(d.arena.Text(v))
		case tokComment:
			v, err := d.sc.textValue()
			if err != nil {
				return err
			}
			cur.AppendChild(d.arena.Comment(v))
		case tokPI:
			if d.sc.name == "xml" {
				continue // XML declaration
			}
			v, err := d.sc.textValue()
			if err != nil {
				return err
			}
			cur.AppendChild(d.arena.PI(d.sc.name, v))
		}
	}
}

// ------------------------------------------------------------- traversal

// skipElement consumes the rest of the element whose start tag is the
// current token, ignoring all content.
func (d *decoder) skipElement() error {
	if d.sc.selfClose {
		return nil
	}
	target := d.sc.depth - 1
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		if tok == tokEnd && d.sc.depth == target {
			return nil
		}
	}
}

// elementText consumes the rest of the current element and returns the
// concatenation of all descendant text — fn:string of the element, the
// value the DOM decoder read via StringValue.
func (d *decoder) elementText() (string, error) {
	if d.sc.selfClose {
		return "", nil
	}
	target := d.sc.depth - 1
	first := ""
	var buf []byte
	for {
		tok, err := d.sc.next()
		if err != nil {
			return "", err
		}
		switch tok {
		case tokEnd:
			if d.sc.depth == target {
				if buf != nil {
					return string(buf), nil
				}
				return first, nil
			}
		case tokText:
			v, err := d.sc.textValue()
			if err != nil {
				return "", err
			}
			switch {
			case buf != nil:
				buf = append(buf, v...)
			case first == "":
				first = v
			default:
				buf = append(append(buf, first...), v...)
			}
		}
	}
}

// drain validates the remainder of the input: balanced tags and
// well-formed markup, matching the whole-document parse the DOM decoder
// performed.
func (d *decoder) drain() error {
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		if tok == tokEOF {
			return nil
		}
	}
}

// ------------------------------------------------------------ number scan

// scanIntInto parses a leading integer the way fmt.Sscanf("%d") did:
// optional whitespace, sign and digits, trailing junk ignored, no digits
// leaves dst unchanged.
func scanIntInto(s string, dst *int) {
	var v int64
	if scanLeadingInt(s, &v) {
		*dst = int(v)
	}
}

func scanInt64Into(s string, dst *int64) {
	var v int64
	if scanLeadingInt(s, &v) {
		*dst = v
	}
}

func scanLeadingInt(s string, dst *int64) bool {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	digits := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == digits {
		return false
	}
	v, err := strconv.ParseInt(s[start:i], 10, 64)
	if err != nil {
		return false
	}
	*dst = v
	return true
}

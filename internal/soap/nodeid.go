package soap

import (
	"fmt"
	"strconv"
	"strings"

	"xrpc/internal/xdm"
)

// Call-by-fragment: the protocol extension sketched in footnote 4 of the
// paper. When a node parameter is a descendant-or-self of another node
// parameter that is fully serialized in the same call, it may be
// referred to with an xrpc:nodeid attribute instead of being serialized
// again. The n2s function then returns the node *within* the decoded
// fragment of the referenced parameter, which
//
//   - preserves ancestor/descendant relationships among parameters at
//     the remote peer (plain call-by-value destroys them), and
//   - compresses the SOAP message (the fragment ships once).
//
// The reference format is "p<param>:<ord>": parameter index (0-based)
// of the fully serialized fragment, and the preorder ordinal of the
// node within that parameter's item (ordinals are stable across
// serialize/parse because both sides seal trees identically).

// NodeRef is a by-fragment parameter reference.
type NodeRef struct {
	Param int // which parameter holds the serialized fragment
	Item  int // which item of that parameter (usually 0)
	Ord   int // preorder ordinal within the item's tree
}

// String renders the xrpc:nodeid attribute value.
func (r NodeRef) String() string {
	return fmt.Sprintf("p%d.%d:%d", r.Param, r.Item, r.Ord)
}

// parseNodeRef parses an xrpc:nodeid attribute value.
func parseNodeRef(s string) (NodeRef, error) {
	var r NodeRef
	if !strings.HasPrefix(s, "p") {
		return r, fmt.Errorf("soap: malformed nodeid %q", s)
	}
	rest := s[1:]
	dot := strings.IndexByte(rest, '.')
	colon := strings.IndexByte(rest, ':')
	if dot < 0 || colon < 0 || colon < dot {
		return r, fmt.Errorf("soap: malformed nodeid %q", s)
	}
	var err error
	if r.Param, err = strconv.Atoi(rest[:dot]); err != nil {
		return r, fmt.Errorf("soap: malformed nodeid %q", s)
	}
	if r.Item, err = strconv.Atoi(rest[dot+1 : colon]); err != nil {
		return r, fmt.Errorf("soap: malformed nodeid %q", s)
	}
	if r.Ord, err = strconv.Atoi(rest[colon+1:]); err != nil {
		return r, fmt.Errorf("soap: malformed nodeid %q", s)
	}
	return r, nil
}

// CompressCall computes the call-by-fragment references for one call's
// parameters: a node item that is a descendant-or-self of an earlier
// node parameter (the fully serialized fragment) is marked with a
// NodeRef. refs[i][j] is non-nil when params[i][j] should travel as a
// reference; the ordinal is relative to the fragment item's subtree, so
// it survives serialization (both sides seal subtrees identically).
func CompressCall(params []xdm.Sequence) (refs [][]*NodeRef, compressed bool) {
	type frag struct {
		param, item int
		node        *xdm.Node
	}
	var frags []frag
	refs = make([][]*NodeRef, len(params))
	for pi, seq := range params {
		refs[pi] = make([]*NodeRef, len(seq))
		for ii, it := range seq {
			n, isNode := it.(*xdm.Node)
			if !isNode {
				continue
			}
			found := false
			for _, f := range frags {
				if isAncestorOrSelf(f.node, n) {
					refs[pi][ii] = &NodeRef{
						Param: f.param,
						Item:  f.item,
						Ord:   n.Ord() - f.node.Ord(),
					}
					compressed = true
					found = true
					break
				}
			}
			if !found {
				frags = append(frags, frag{param: pi, item: ii, node: n})
			}
		}
	}
	return refs, compressed
}

func isAncestorOrSelf(anc, n *xdm.Node) bool {
	for p := n; p != nil; p = p.Parent {
		if p == anc {
			return true
		}
	}
	return false
}

// ResolveNodeRefs walks decoded call parameters and replaces nodeid
// placeholders with the actual nodes inside the referenced decoded
// fragments. Placeholders are *xdm.Node elements named "xrpc:nodeid-ref"
// carrying the reference in their Value (installed by DecodeSequence).
func ResolveNodeRefs(params []xdm.Sequence) error {
	for pi, seq := range params {
		for ii, it := range seq {
			n, isNode := it.(*xdm.Node)
			if !isNode || n.Name != nodeRefPlaceholder {
				continue
			}
			ref, err := parseNodeRef(n.Value)
			if err != nil {
				return err
			}
			if ref.Param >= len(params) || ref.Item >= len(params[ref.Param]) {
				return fmt.Errorf("soap: nodeid %s out of range", n.Value)
			}
			target, isN := params[ref.Param][ref.Item].(*xdm.Node)
			if !isN {
				return fmt.Errorf("soap: nodeid %s refers to a non-node parameter", n.Value)
			}
			resolved := target.FindByOrd(ref.Ord)
			if resolved == nil {
				return fmt.Errorf("soap: nodeid %s not found in fragment", n.Value)
			}
			params[pi][ii] = resolved
		}
	}
	return nil
}

// nodeRefPlaceholder is the synthetic element name DecodeSequence uses
// for unresolved references.
const nodeRefPlaceholder = "xrpc:nodeid-ref"

package soap

import (
	"fmt"
	"io"

	"xrpc/internal/xdm"
)

// stream.go is the incremental face of the decoder: the same grammar
// walk as decode.go, but fed from an io.Reader, so envelopes decode as
// bytes arrive off the socket. DecodeStream is the drop-in streaming
// counterpart of Decode (whole message in, whole Message out, bounded
// only by message size), while ResponseStream exposes a response one
// result sequence — and within it one item — at a time, so a consumer
// can forward results while the producer is still writing them. Memory
// then scales with the largest single item plus the scanner's refill
// window, not with the response.

// DecodeStream parses a SOAP XRPC message of any kind from r,
// decoding incrementally as bytes arrive. It accepts and produces
// exactly what Decode does.
func DecodeStream(r io.Reader) (*Message, error) {
	d := &decoder{sc: scanner{src: r}}
	return d.decodeMessage()
}

// DecodeRequestStream parses and requires a request message from r.
func DecodeRequestStream(r io.Reader) (*Request, error) {
	m, err := DecodeStream(r)
	if err != nil {
		return nil, err
	}
	if m.Request == nil {
		return nil, fmt.Errorf("soap: message is not a request")
	}
	return m.Request, nil
}

// DecodeResponseStream parses a response message from r, converting
// faults into *Fault errors. For item-at-a-time consumption use
// NewResponseStream instead.
func DecodeResponseStream(r io.Reader) (*Response, error) {
	m, err := DecodeStream(r)
	if err != nil {
		return nil, err
	}
	if m.Fault != nil {
		return nil, m.Fault
	}
	if m.Response == nil {
		return nil, fmt.Errorf("soap: message is not a response")
	}
	return m.Response, nil
}

// ResponseStream reads a response envelope incrementally:
//
//	rs, err := NewResponseStream(r)      // header; faults surface here
//	for {
//		ok, err := rs.NextSequence()     // one per call result
//		if !ok { break }
//		for {
//			it, err := rs.NextItem()     // nil item = end of sequence
//			if it == nil { break }
//		}
//	}
//	peers, err := rs.Finish()            // drain + validate the rest
//
// NextSequence discards any unread items of the current sequence, and
// Finish drains whatever was not consumed, so partial reads are always
// safe. The one divergence from the buffered decoder: Decode scans the
// whole Body before picking a winner, so a Fault placed *after* the
// response element still takes precedence up front — here it surfaces
// at Finish instead (our encoder only ever emits one Body child, so
// this matters only for foreign envelopes).
type ResponseStream struct {
	d      decoder
	module string
	method string
	peers  []string

	// end-tag depth targets for the open elements
	envTgt  int
	bodyTgt int
	respTgt int
	seqTgt  int

	inSeq    bool // a sequence is open for NextItem
	seqEnd   bool // ...but was self-closed (no tokens left to read)
	done     bool // the response element is fully consumed
	finished bool // Finish completed

	// queue holds decoded items not yet delivered: one wrapper element
	// can denote several items (<xrpc:attribute> with multiple
	// attributes) or none (an empty <xrpc:element/>).
	queue xdm.Sequence
	qi    int
}

// NewResponseStream reads the envelope header from r up to the
// response element. A Fault message is returned as a *Fault error; a
// request makes it a not-a-response error.
func NewResponseStream(r io.Reader) (*ResponseStream, error) {
	rs := &ResponseStream{}
	rs.d.sc.src = r
	if err := rs.header(); err != nil {
		return nil, err
	}
	return rs, nil
}

// Module returns the xrpc:module attribute of the response.
func (rs *ResponseStream) Module() string { return rs.module }

// Method returns the xrpc:method attribute of the response.
func (rs *ResponseStream) Method() string { return rs.method }

func (rs *ResponseStream) header() error {
	d := &rs.d
	// locate the Envelope among the top-level elements (decodeMessage)
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		if tok == tokEOF {
			return fmt.Errorf("soap: missing Envelope")
		}
		if tok != tokStart {
			continue
		}
		if localName(d.sc.name) == "Envelope" {
			break
		}
		if err := d.skipElement(); err != nil {
			return err
		}
	}
	if d.sc.selfClose {
		return fmt.Errorf("soap: missing Body")
	}
	rs.envTgt = d.sc.depth - 1
	// first Body child (decodeEnvelope)
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.envTgt {
				return fmt.Errorf("soap: missing Body")
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		if localName(d.sc.name) == "Body" {
			break
		}
		if err := d.skipElement(); err != nil {
			return err
		}
	}
	if d.sc.selfClose {
		return fmt.Errorf("soap: body contains no request, response or fault")
	}
	rs.bodyTgt = d.sc.depth - 1
	// first meaningful Body child (decodeBody, taken in document order)
	for {
		tok, err := d.sc.next()
		if err != nil {
			return err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.bodyTgt {
				return fmt.Errorf("soap: body contains no request, response or fault")
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		switch localName(d.sc.name) {
		case "Fault":
			f, err := d.decodeFault()
			if err != nil {
				return err
			}
			return f
		case "request":
			return fmt.Errorf("soap: message is not a response")
		case "response":
			rs.module = d.attrLocalScan("module")
			rs.method = d.attrLocalScan("method")
			if d.sc.selfClose {
				rs.done = true
			} else {
				rs.respTgt = d.sc.depth - 1
			}
			return nil
		default:
			if err := d.skipElement(); err != nil {
				return err
			}
		}
	}
}

// NextSequence advances to the next result sequence, discarding any
// unread items of the current one. It reports false once the response
// element is exhausted.
func (rs *ResponseStream) NextSequence() (bool, error) {
	for rs.inSeq || rs.qi < len(rs.queue) {
		it, err := rs.NextItem()
		if err != nil {
			return false, err
		}
		if it == nil {
			break
		}
	}
	if rs.done {
		return false, nil
	}
	d := &rs.d
	for {
		tok, err := d.sc.next()
		if err != nil {
			return false, err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.respTgt {
				rs.done = true
				return false, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		switch localName(d.sc.name) {
		case "sequence":
			rs.inSeq = true
			rs.seqEnd = d.sc.selfClose
			if !d.sc.selfClose {
				rs.seqTgt = d.sc.depth - 1
			}
			return true, nil
		case "participatingPeers":
			if rs.peers, err = d.decodePeers(rs.peers); err != nil {
				return false, err
			}
		default:
			if err := d.skipElement(); err != nil {
				return false, err
			}
		}
	}
}

// NextItem returns the next item of the current sequence, or (nil, nil)
// at its end. Delivered items are released from the stream's own
// references, so the caller decides their lifetime.
func (rs *ResponseStream) NextItem() (xdm.Item, error) {
	if rs.qi < len(rs.queue) {
		it := rs.queue[rs.qi]
		rs.queue[rs.qi] = nil
		rs.qi++
		return it, nil
	}
	if !rs.inSeq {
		return nil, fmt.Errorf("soap: NextItem outside a sequence")
	}
	if rs.seqEnd {
		rs.inSeq = false
		return nil, nil
	}
	d := &rs.d
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.seqTgt {
				rs.inSeq = false
				return nil, nil
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		rs.queue = rs.queue[:0]
		rs.qi = 0
		q, err := d.decodeSequenceItem(rs.queue)
		if err != nil {
			return nil, err
		}
		rs.queue = q
		if len(rs.queue) > 0 {
			it := rs.queue[0]
			rs.queue[0] = nil
			rs.qi = 1
			return it, nil
		}
		// the wrapper denoted no items (empty <xrpc:element/>): keep
		// scanning
	}
}

// Finish drains and validates the rest of the document — unread
// sequences, trailing Body and Envelope content, the epilogue — and
// returns the participating peers. A Fault elsewhere in the Body (which
// the buffered decoder gives precedence) surfaces here as a *Fault
// error; a request sibling makes the message not-a-response, matching
// DecodeResponse.
func (rs *ResponseStream) Finish() ([]string, error) {
	if rs.finished {
		return rs.peers, nil
	}
	for {
		ok, err := rs.NextSequence()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	d := &rs.d
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.bodyTgt {
				break
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		switch localName(d.sc.name) {
		case "Fault":
			f, err := d.decodeFault()
			if err != nil {
				return nil, err
			}
			return nil, f
		case "request":
			return nil, fmt.Errorf("soap: message is not a response")
		default:
			if err := d.skipElement(); err != nil {
				return nil, err
			}
		}
	}
	for {
		tok, err := d.sc.next()
		if err != nil {
			return nil, err
		}
		if tok == tokEnd {
			if d.sc.depth == rs.envTgt {
				break
			}
			continue
		}
		if tok != tokStart {
			continue
		}
		if err := d.skipElement(); err != nil {
			return nil, err
		}
	}
	if err := d.drain(); err != nil {
		return nil, err
	}
	rs.finished = true
	return rs.peers, nil
}

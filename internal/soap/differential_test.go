package soap

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"xrpc/internal/xdm"
)

// differential_test.go pins the streaming wire path to the DOM-based
// reference implementations: the pooled Encoder must produce bytes
// identical to the strings.Builder reference encoder, and the
// pull-decoder must agree with DecodeDOM, on fixtures and on randomized
// messages covering ByFragment, QueryID, SeqNrs, node parameters of
// every kind, and Fault messages.

// fixtureRequests returns the request fixtures used across the
// round-trip, differential, benchmark and fuzz tests.
func fixtureRequests(t testing.TB) []*Request {
	frag := func(s string) *xdm.Node {
		ns, err := xdm.ParseFragment(s)
		if err != nil {
			t.Fatal(err)
		}
		return ns[0]
	}
	person := frag(`<person id="p7"><name>Kathy Blanton</name><emailaddress>mailto:kblanton@example.org</emailaddress></person>`)
	reqs := []*Request{
		{
			Module: "films", Method: "filmsByActor", Arity: 1,
			Location: "http://x.example.org/film.xq",
			Calls:    [][]xdm.Sequence{{{xdm.String("Sean Connery")}}},
		},
		{
			Module: "films", Method: "filmsByActor", Arity: 1,
			Location: "http://x.example.org/film.xq",
			Updating: true,
			TraceID:  "t-00c0ffee1badcafe",
			QueryID: &QueryID{
				ID:        "q-123",
				Host:      "xrpc://a.example.org",
				Timestamp: time.Date(2007, 9, 23, 12, 0, 0, 12345, time.UTC),
				Timeout:   30,
			},
			Calls: [][]xdm.Sequence{
				{{xdm.String("Julie Andrews")}},
				{{xdm.String("Sean Connery")}},
			},
			SeqNrs: []int64{4, 2},
		},
		{
			Module: "m", Method: "f", Arity: 1, Location: "l",
			Calls: [][]xdm.Sequence{{{xdm.Integer(2), xdm.Double(3.1), xdm.Boolean(true), xdm.Decimal(-0.5), xdm.Untyped("u"), xdm.String(`a<b>&"c`)}}},
		},
		{
			Module: "m", Method: "f", Arity: 2, Location: "l",
			Calls: [][]xdm.Sequence{{
				{person, xdm.String("x")},
				{frag(`<name>The Rock</name>`)},
			}},
		},
		{
			Module: "m", Method: "f", Arity: 0, Location: "l",
			Calls: [][]xdm.Sequence{{}, {}, {}},
		},
	}
	// call-by-fragment: the second parameter is a descendant of the first
	desc := person.Children[0]
	reqs = append(reqs, &Request{
		Module: "m", Method: "f", Arity: 2, Location: "l",
		ByFragment: true,
		Calls:      [][]xdm.Sequence{{{person}, {desc}}},
	})
	return reqs
}

// fixtureResponses returns response/fault fixtures.
func fixtureResponses(t testing.TB) []*Response {
	el, err := xdm.ParseFragment(`<e a="1">t<sub x="y"/><!--c--><?pi d?></e>`)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xdm.ParseDocument("d.xml", `<root><x/>text</root>`)
	if err != nil {
		t.Fatal(err)
	}
	// benign attribute value: the reference encoder writes bare attribute
	// items with %q, which breaks on markup (hostile values are covered by
	// TestHostileAttributeValues)
	attr := xdm.NewAttribute("k", "v'benign")
	attr.Seal()
	text := xdm.NewText("some <text> & more")
	text.Seal()
	comment := xdm.NewComment("a comment")
	comment.Seal()
	pi := xdm.NewPI("target", "data")
	pi.Seal()
	return []*Response{
		{
			Module: "films", Method: "filmsByActor",
			Results: []xdm.Sequence{
				{xdm.String("one")},
				{},
				{xdm.Integer(42)},
			},
			Peers: []string{"xrpc://y.example.org", "xrpc://z.example.org"},
		},
		{
			Module: "m", Method: "f",
			Results: []xdm.Sequence{{el[0], doc, attr, text, comment, pi}},
		},
	}
}

func TestEncoderMatchesReferenceOnFixtures(t *testing.T) {
	for i, req := range fixtureRequests(t) {
		if got, want := EncodeRequest(req), EncodeRequestRef(req); !bytes.Equal(got, want) {
			t.Errorf("request fixture %d: streaming and reference encoders differ\nnew: %s\nref: %s", i, got, want)
		}
	}
	for i, resp := range fixtureResponses(t) {
		if got, want := EncodeResponse(resp), EncodeResponseRef(resp); !bytes.Equal(got, want) {
			t.Errorf("response fixture %d: streaming and reference encoders differ\nnew: %s\nref: %s", i, got, want)
		}
	}
	f := &Fault{Code: "env:Sender", Reason: "could not load module!"}
	if got, want := EncodeFault(f), EncodeFaultRef(f); !bytes.Equal(got, want) {
		t.Errorf("fault: streaming and reference encoders differ\nnew: %s\nref: %s", got, want)
	}
}

// reencode canonicalizes a decoded message for comparison: a decoded
// message re-encoded must be byte-identical regardless of which decoder
// produced it.
func reencode(t *testing.T, m *Message) []byte {
	t.Helper()
	switch {
	case m.Request != nil:
		return EncodeRequest(m.Request)
	case m.Response != nil:
		return EncodeResponse(m.Response)
	case m.Fault != nil:
		return EncodeFault(m.Fault)
	}
	t.Fatal("empty message")
	return nil
}

func decodeBoth(t *testing.T, msg []byte) (*Message, *Message) {
	t.Helper()
	pull, errPull := Decode(msg)
	dom, errDOM := DecodeDOM(msg)
	if (errPull == nil) != (errDOM == nil) {
		t.Fatalf("decoder disagreement: pull err=%v, dom err=%v\nmessage:\n%s", errPull, errDOM, msg)
	}
	if errPull != nil {
		return nil, nil
	}
	return pull, dom
}

// assertAgree checks the pull and DOM decoders produced equivalent
// messages: same headers, and byte-identical re-encodings.
func assertAgree(t *testing.T, msg []byte) {
	t.Helper()
	pull, dom := decodeBoth(t, msg)
	if pull == nil {
		return
	}
	if got, want := reencode(t, pull), reencode(t, dom); !bytes.Equal(got, want) {
		t.Fatalf("pull and DOM decoders disagree\npull: %s\ndom:  %s\noriginal: %s", got, want, msg)
	}
	if pr, dr := pull.Request, dom.Request; pr != nil {
		if pr.Module != dr.Module || pr.Method != dr.Method || pr.Arity != dr.Arity ||
			pr.Location != dr.Location || pr.Updating != dr.Updating ||
			pr.TraceID != dr.TraceID {
			t.Fatalf("request headers disagree: pull %+v, dom %+v", pr, dr)
		}
		if (pr.QueryID == nil) != (dr.QueryID == nil) {
			t.Fatalf("queryID presence disagrees")
		}
		if pr.QueryID != nil && *pr.QueryID != *dr.QueryID {
			t.Fatalf("queryID disagrees: pull %+v, dom %+v", pr.QueryID, dr.QueryID)
		}
		if fmt.Sprint(pr.SeqNrs) != fmt.Sprint(dr.SeqNrs) {
			t.Fatalf("seqNrs disagree: pull %v, dom %v", pr.SeqNrs, dr.SeqNrs)
		}
		if len(pr.Calls) != len(dr.Calls) {
			t.Fatalf("call counts disagree: pull %d, dom %d", len(pr.Calls), len(dr.Calls))
		}
		for ci := range pr.Calls {
			if len(pr.Calls[ci]) != len(dr.Calls[ci]) {
				t.Fatalf("call %d param counts disagree", ci)
			}
			for pi := range pr.Calls[ci] {
				if !xdm.DeepEqual(pr.Calls[ci][pi], dr.Calls[ci][pi]) {
					t.Fatalf("call %d param %d disagrees: pull %v, dom %v",
						ci, pi, pr.Calls[ci][pi], dr.Calls[ci][pi])
				}
			}
		}
	}
	if pr, dr := pull.Response, dom.Response; pr != nil {
		if pr.Module != dr.Module || pr.Method != dr.Method {
			t.Fatalf("response headers disagree")
		}
		if fmt.Sprint(pr.Peers) != fmt.Sprint(dr.Peers) {
			t.Fatalf("peers disagree: pull %v, dom %v", pr.Peers, dr.Peers)
		}
		if len(pr.Results) != len(dr.Results) {
			t.Fatalf("result counts disagree")
		}
		for i := range pr.Results {
			if !xdm.DeepEqual(pr.Results[i], dr.Results[i]) {
				t.Fatalf("result %d disagrees", i)
			}
		}
	}
	if pf, df := pull.Fault, dom.Fault; pf != nil && *pf != *df {
		t.Fatalf("faults disagree: pull %+v, dom %+v", pf, df)
	}
}

func TestDecoderAgreesWithDOMOnFixtures(t *testing.T) {
	for _, req := range fixtureRequests(t) {
		assertAgree(t, EncodeRequest(req))
	}
	for _, resp := range fixtureResponses(t) {
		assertAgree(t, EncodeResponse(resp))
	}
	assertAgree(t, EncodeFault(&Fault{Code: "env:Sender", Reason: " spaced \n reason "}))
	// foreign prefixes, single quotes, CDATA, entities, comments in odd
	// places — messages our encoder never produces but the DOM decoder
	// accepted
	hand := []string{
		`<?xml version="1.0"?>
<S:Envelope xmlns:S="http://www.w3.org/2003/05/soap-envelope" xmlns:x="http://monetdb.cwi.nl/XQuery">
<S:Body>
<x:request x:module='films' x:method='f' x:arity='1' x:location='loc'>
<!-- a comment --><x:call><x:sequence><x:atomic-value xsi:type="xs:string" xmlns:xsi="i">v<![CDATA[&raw<]]>w</x:atomic-value></x:sequence></x:call>
</x:request>
</S:Body>
</S:Envelope>`,
		`<env:Envelope xmlns:env="e" xmlns:xrpc="x"><env:Body><xrpc:response xrpc:module="m" xrpc:method="f">
<xrpc:sequence><xrpc:element><a b="&quot;&#65;&amp;">t&lt;u</a></xrpc:element></xrpc:sequence>
<xrpc:participatingPeers><xrpc:peer uri="xrpc://p1"/><other/><xrpc:peer uri='xrpc://p2'/></xrpc:participatingPeers>
</xrpc:response></env:Body></env:Envelope>`,
		`<env:Envelope xmlns:env="e"><env:Body><env:Fault>
<env:Code><env:Value>  env:Sender
</env:Value></env:Code><env:Reason><env:Text xml:lang="en">r1</env:Text></env:Reason></env:Fault></env:Body></env:Envelope>`,
	}
	for _, msg := range hand {
		assertAgree(t, []byte(msg))
	}
}

// randomItem generates an arbitrary XDM item (biased toward atomics).
func randomItem(r *rand.Rand, depth int) xdm.Item {
	switch r.Intn(10) {
	case 0:
		return xdm.Integer(r.Int63n(2000000) - 1000000)
	case 1:
		return xdm.Double(float64(r.Int63n(1000000)) / 997.0)
	case 2:
		return xdm.Boolean(r.Intn(2) == 0)
	case 3:
		return xdm.Decimal(float64(r.Int63n(100000)) / 100.0)
	case 4:
		return xdm.Untyped(randomText(r))
	case 5:
		n := randomTree(r, depth)
		n.Seal()
		return n
	case 6:
		switch r.Intn(4) {
		case 0:
			// benign: the reference encoder writes bare attribute items
			// with %q, which breaks on quotes/controls (covered by the
			// hostile-attribute test)
			a := xdm.NewAttribute("attr", benignText(r))
			a.Seal()
			return a
		case 1:
			tx := xdm.NewText(randomText(r))
			tx.Seal()
			return tx
		case 2:
			c := xdm.NewComment(strings.ReplaceAll(randomText(r), "-", "x"))
			c.Seal()
			return c
		default:
			pi := xdm.NewPI("tgt", strings.ReplaceAll(randomText(r), "?", "x"))
			pi.Seal()
			return pi
		}
	default:
		return xdm.String(randomText(r))
	}
}

// randomText produces strings exercising every escape path.
func randomText(r *rand.Rand) string {
	alphabet := []string{
		"a", "b", "Z", " ", "<", ">", "&", `"`, "'", "\n", "\t",
		"é", "💡", "]]>", "&amp;", "p7",
	}
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// benignText produces strings the reference encoder's %q quirk renders
// identically to proper escaping — used in header-attribute positions so
// the encoder byte-identity assertion holds (the hostile-attribute cases
// where %q breaks are covered by TestHostileAttributeValues).
func benignText(r *rand.Rand) string {
	alphabet := []string{"a", "b", "Z", " ", ">", "'", "é", "💡", "]]>", "p7"}
	n := r.Intn(10)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

func randomTree(r *rand.Rand, depth int) *xdm.Node {
	el := xdm.NewElement(fmt.Sprintf("el%d", r.Intn(4)))
	for i := r.Intn(3); i > 0; i-- {
		el.SetAttr(xdm.NewAttribute(fmt.Sprintf("a%d", i), randomText(r)))
	}
	kids := r.Intn(4)
	for i := 0; i < kids; i++ {
		switch {
		case depth > 0 && r.Intn(2) == 0:
			el.AppendChild(randomTree(r, depth-1))
		case r.Intn(5) == 0:
			el.AppendChild(xdm.NewComment("c"))
		default:
			el.AppendChild(xdm.NewText(randomText(r)))
		}
	}
	return el
}

func randomSequence(r *rand.Rand) xdm.Sequence {
	n := r.Intn(4)
	seq := make(xdm.Sequence, 0, n)
	for i := 0; i < n; i++ {
		seq = append(seq, randomItem(r, 2))
	}
	return seq
}

func TestDecoderAgreesWithDOMOnRandomRequests(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		arity := r.Intn(3)
		req := &Request{
			Module:   "m" + benignText(r),
			Method:   "f",
			Arity:    arity,
			Location: "http://x.example.org/m.xq?" + benignText(r),
			Updating: r.Intn(2) == 0,
		}
		if r.Intn(2) == 0 {
			req.TraceID = "t-" + benignText(r)
		}
		if r.Intn(2) == 0 {
			req.QueryID = &QueryID{
				ID:        "q-" + randomText(r),
				Host:      "xrpc://h.example.org/" + benignText(r),
				Timestamp: time.Unix(r.Int63n(1e9), r.Int63n(1e9)).UTC(),
				Timeout:   r.Intn(100),
			}
		}
		calls := r.Intn(4)
		for c := 0; c < calls; c++ {
			call := make([]xdm.Sequence, arity)
			for p := 0; p < arity; p++ {
				call[p] = randomSequence(r)
			}
			req.Calls = append(req.Calls, call)
		}
		if r.Intn(3) == 0 && calls > 0 {
			req.SeqNrs = make([]int64, calls)
			for i := range req.SeqNrs {
				req.SeqNrs[i] = r.Int63n(1000)
			}
		}
		if r.Intn(4) == 0 && arity >= 2 && calls > 0 {
			// force a by-fragment pair: param 1 is a descendant of param 0
			tree := randomTree(r, 2)
			tree.Seal()
			desc := tree
			for len(desc.Children) > 0 && r.Intn(2) == 0 {
				desc = desc.Children[r.Intn(len(desc.Children))]
			}
			if desc.Kind == xdm.ElementNode {
				req.ByFragment = true
				req.Calls[0][0] = xdm.Sequence{tree}
				req.Calls[0][1] = xdm.Sequence{desc}
			}
		}
		msg := EncodeRequest(req)
		if ref := EncodeRequestRef(req); !bytes.Equal(msg, ref) {
			t.Fatalf("iter %d: encoders differ\nnew: %s\nref: %s", iter, msg, ref)
		}
		assertAgree(t, msg)
	}
}

func TestDecoderAgreesWithDOMOnRandomResponses(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		resp := &Response{
			Module: "m" + benignText(r),
			Method: "f",
		}
		results := r.Intn(5)
		for i := 0; i < results; i++ {
			resp.Results = append(resp.Results, randomSequence(r))
		}
		for i := r.Intn(3); i > 0; i-- {
			resp.Peers = append(resp.Peers, "xrpc://peer/"+benignText(r))
		}
		msg := EncodeResponse(resp)
		if ref := EncodeResponseRef(resp); !bytes.Equal(msg, ref) {
			t.Fatalf("iter %d: encoders differ\nnew: %s\nref: %s", iter, msg, ref)
		}
		assertAgree(t, msg)

		fault := &Fault{Code: "env:Receiver", Reason: randomText(r)}
		assertAgree(t, EncodeFault(fault))
	}
}

// TestHostileAttributeValues is the regression test for the %q escaping
// bug: module URIs, locations, queryID hosts/IDs and peer URIs
// containing quotes, newlines, tabs or markup must produce well-formed
// XML that round-trips exactly.
func TestHostileAttributeValues(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes" inside`,
		"new\nline",
		"tab\tand\rcr",
		`<markup>&entity;`,
		`both " and
newline`,
	}
	for _, h := range hostile {
		req := &Request{
			Module:   "mod-" + h,
			Method:   "f",
			Arity:    1,
			Location: "loc-" + h,
			TraceID:  "tr-" + h,
			QueryID: &QueryID{
				ID:      "id-" + h,
				Host:    "host-" + h,
				Timeout: 30,
			},
			Calls: [][]xdm.Sequence{{{xdm.String(h)}}},
		}
		back, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			t.Fatalf("hostile %q: decode failed: %v", h, err)
		}
		// Attribute values round-trip exactly: the encoder writes
		// tab/newline/CR as character references, which the XML
		// line-ending and attribute-normalization rules exempt. Text
		// content (the queryID ID) carries raw newlines, so a literal \r
		// normalizes to \n there.
		if back.Module != "mod-"+h {
			t.Errorf("hostile %q: module = %q", h, back.Module)
		}
		if back.Location != "loc-"+h {
			t.Errorf("hostile %q: location = %q", h, back.Location)
		}
		if back.TraceID != "tr-"+h {
			t.Errorf("hostile %q: traceID = %q", h, back.TraceID)
		}
		if back.QueryID == nil || back.QueryID.Host != "host-"+h {
			t.Errorf("hostile %q: queryID host = %+v", h, back.QueryID)
		}
		if norm := strings.ReplaceAll(h, "\r", "\n"); back.QueryID.ID != "id-"+norm {
			t.Errorf("hostile %q: queryID id = %q", h, back.QueryID.ID)
		}
		// the DOM decoder (encoding/xml) must accept the message too:
		// proof the XML is well-formed
		if _, err := DecodeDOM(EncodeRequest(req)); err != nil {
			t.Errorf("hostile %q: message is not well-formed XML: %v", h, err)
		}

		// hostile attribute item: its value is also written in attribute
		// position
		hAttr := xdm.NewAttribute("k", h)
		hAttr.Seal()
		backA, err := DecodeRequest(EncodeRequest(&Request{
			Module: "m", Method: "f", Arity: 1, Location: "l",
			Calls: [][]xdm.Sequence{{{hAttr}}},
		}))
		if err != nil {
			t.Fatalf("hostile attribute item %q: decode failed: %v", h, err)
		}
		if got := backA.Calls[0][0][0].(*xdm.Node); got.Kind != xdm.AttributeNode || got.Value != h {
			t.Errorf("hostile attribute item %q: got %+v", h, got)
		}

		resp := &Response{Module: "m", Method: "f", Peers: []string{"xrpc://p/" + h}, Results: []xdm.Sequence{{}}}
		backR, err := DecodeResponse(EncodeResponse(resp))
		if err != nil {
			t.Fatalf("hostile peer %q: decode failed: %v", h, err)
		}
		if backR.Peers[0] != "xrpc://p/"+h {
			t.Errorf("hostile peer %q: got %q", h, backR.Peers[0])
		}
	}
}

// TestDirectiveFloodDoesNotOverflowStack is the regression test for the
// scanner's directive handling: a run of millions of <!...> directives
// must be skipped iteratively (a recursive next() died with a fatal,
// unrecoverable stack overflow).
func TestDirectiveFloodDoesNotOverflowStack(t *testing.T) {
	flood := bytes.Repeat([]byte("<!>"), 2_000_000)
	if _, err := Decode(flood); err == nil {
		t.Fatal("directive flood decoded as a message")
	}
	// and a flood before a valid envelope still decodes
	msg := append(bytes.Repeat([]byte("<!x>"), 100_000), EncodeFault(&Fault{Code: "env:Sender", Reason: "r"})...)
	m, err := Decode(msg)
	if err != nil || m.Fault == nil {
		t.Fatalf("envelope after directive flood: %v, %+v", err, m)
	}
}

// TestReferenceEncoderBreaksOnHostileAttributes documents why the %q
// path had to go: it emits backslash escapes, which are not XML.
func TestReferenceEncoderBreaksOnHostileAttributes(t *testing.T) {
	req := &Request{
		Module: `has "quotes"`, Method: "f", Arity: 0, Location: "l",
	}
	if _, err := DecodeDOM(EncodeRequestRef(req)); err == nil {
		t.Skip("reference encoder unexpectedly produced well-formed XML; quirk fixed upstream?")
	}
	if _, err := DecodeRequest(EncodeRequest(req)); err != nil {
		t.Fatalf("streaming encoder must handle hostile attributes: %v", err)
	}
}

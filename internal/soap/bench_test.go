package soap

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"xrpc/internal/xdm"
)

// benchRequest is a realistic bulk request: calls getPerson-style string
// parameters plus one node parameter, with a queryID.
func benchRequest(calls int) *Request {
	person, err := xdm.ParseFragment(`<person id="p7"><name>Kathy Blanton</name><emailaddress>mailto:kblanton@example.org</emailaddress></person>`)
	if err != nil {
		panic(err)
	}
	req := &Request{
		Module:   "functions",
		Method:   "getPerson",
		Arity:    2,
		Location: "http://example.org/functions.xq",
		QueryID: &QueryID{
			ID:        "q-bench",
			Host:      "xrpc://bench.example.org",
			Timestamp: time.Date(2007, 9, 23, 12, 0, 0, 0, time.UTC),
			Timeout:   30,
		},
	}
	for i := 0; i < calls; i++ {
		req.Calls = append(req.Calls, []xdm.Sequence{
			{xdm.String("xmark.xml")},
			{xdm.String(fmt.Sprintf("person%d", i)), person[0]},
		})
	}
	return req
}

func benchResponse(results int) *Response {
	item, err := xdm.ParseFragment(`<closed_auction><buyer person="p3"/><price>42.50</price></closed_auction>`)
	if err != nil {
		panic(err)
	}
	resp := &Response{Module: "functions", Method: "getPerson"}
	for i := 0; i < results; i++ {
		resp.Results = append(resp.Results, xdm.Sequence{item[0], xdm.Integer(int64(i))})
	}
	resp.Peers = []string{"xrpc://y.example.org"}
	return resp
}

func BenchmarkSoapEncodeRequest(b *testing.B) {
	req := benchRequest(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder()
		enc.EncodeRequest(req)
		enc.Release()
	}
}

func BenchmarkSoapEncodeRequestRef(b *testing.B) {
	req := benchRequest(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeRequestRef(req)
	}
}

func BenchmarkSoapEncodeResponse(b *testing.B) {
	resp := benchResponse(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder()
		enc.EncodeResponse(resp)
		enc.Release()
	}
}

func BenchmarkSoapEncodeResponseRef(b *testing.B) {
	resp := benchResponse(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeResponseRef(resp)
	}
}

func BenchmarkSoapDecodeRequest(b *testing.B) {
	msg := EncodeRequest(benchRequest(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoapDecodeRequestDOM(b *testing.B) {
	msg := EncodeRequest(benchRequest(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDOM(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoapDecodeResponse(b *testing.B) {
	msg := EncodeResponse(benchResponse(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResponse(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoapDecodeResponseDOM(b *testing.B) {
	msg := EncodeResponse(benchResponse(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDOM(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoapDecodeResponseStream runs the same decode through the
// incremental reader path (refill scanner over an io.Reader), the
// configuration the streamed scatter-gather uses.
func BenchmarkSoapDecodeResponseStream(b *testing.B) {
	msg := EncodeResponse(benchResponse(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeResponseStream(bytes.NewReader(msg)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoapResponseStreamWalk measures item-at-a-time consumption:
// header, every sequence, every item, Finish — without retaining the
// response.
func BenchmarkSoapResponseStreamWalk(b *testing.B) {
	msg := EncodeResponse(benchResponse(64))
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := NewResponseStream(bytes.NewReader(msg))
		if err != nil {
			b.Fatal(err)
		}
		for {
			ok, err := rs.NextSequence()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
			for {
				it, err := rs.NextItem()
				if err != nil {
					b.Fatal(err)
				}
				if it == nil {
					break
				}
			}
		}
		if _, err := rs.Finish(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoapEncodeResponseTo streams the encode to a sink in chunks
// instead of accumulating the envelope.
func BenchmarkSoapEncodeResponseTo(b *testing.B) {
	resp := benchResponse(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := EncodeResponseTo(io.Discard, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------ allocation guards
//
// The alloc guards turn wire-path regressions into test failures instead
// of silent rot. Bounds are upper limits with headroom over the measured
// values (see CHANGES.md), not exact pins: crossing one means an
// allocation regression of 2x+, worth investigating.

// allocsPerRun measures steady-state allocations, warming the buffer
// pools first.
func allocsPerRun(f func()) float64 {
	for i := 0; i < 10; i++ {
		f()
	}
	return testing.AllocsPerRun(100, f)
}

func TestEncodeRequestAllocGuard(t *testing.T) {
	req := benchRequest(64)
	got := allocsPerRun(func() {
		enc := NewEncoder()
		enc.EncodeRequest(req)
		enc.Release()
	})
	// pooled steady state: the encoder itself allocates nothing; the
	// only allocations are CompressCall bookkeeping-free param walks (0)
	// — leave headroom for pool misses under GC pressure.
	if got > 8 {
		t.Fatalf("pooled request encoding allocates %.0f objects/op, want <= 8", got)
	}
}

func TestEncodeResponseAllocGuard(t *testing.T) {
	resp := benchResponse(64)
	got := allocsPerRun(func() {
		enc := NewEncoder()
		enc.EncodeResponse(resp)
		enc.Release()
	})
	if got > 8 {
		t.Fatalf("pooled response encoding allocates %.0f objects/op, want <= 8", got)
	}
}

func TestDecodeRequestAllocGuard(t *testing.T) {
	msg := EncodeRequest(benchRequest(64))
	got := allocsPerRun(func() {
		if _, err := DecodeRequest(msg); err != nil {
			t.Fatal(err)
		}
	})
	// 64 calls × (2 sequences + ~9 nodes of the person fragment + a
	// handful of strings): ~25 allocs per call. The DOM decoder sat at
	// ~120 per call; the guard keeps the 5x gap from eroding.
	perCall := got / 64
	if perCall > 40 {
		t.Fatalf("streaming request decode allocates %.1f objects per call, want <= 40 (total %.0f)", perCall, got)
	}
	dom := allocsPerRun(func() {
		if _, err := DecodeDOM(msg); err != nil {
			t.Fatal(err)
		}
	})
	if got*5 > dom {
		t.Fatalf("streaming decode (%.0f allocs) is not >= 5x leaner than the DOM decoder (%.0f allocs)", got, dom)
	}
}

func TestDecodeResponseAllocGuard(t *testing.T) {
	msg := EncodeResponse(benchResponse(64))
	got := allocsPerRun(func() {
		if _, err := DecodeResponse(msg); err != nil {
			t.Fatal(err)
		}
	})
	perResult := got / 64
	if perResult > 40 {
		t.Fatalf("streaming response decode allocates %.1f objects per result, want <= 40 (total %.0f)", perResult, got)
	}
}

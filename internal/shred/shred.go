// Package shred implements the pre/size/level document encoding that
// MonetDB/XQuery uses to store shredded XML (§3): every node gets a
// preorder rank (pre), the count of its descendants (size), and its
// depth (level). XPath axes become range scans on this encoding — the
// "staircase" evaluation that makes the relational XQuery engine bulk:
//
//	descendants(p)  = { q | p < q ≤ p+size[p] }
//	children(p)     = descendants with level[q] = level[p]+1
//	parent(p)       = max { q | q < p, q+size[q] ≥ p }
//
// The shredded form keeps a pointer back to each *xdm.Node so results
// can be materialized.
package shred

import (
	"sort"

	"xrpc/internal/xdm"
)

// Doc is a shredded document (or fragment).
type Doc struct {
	// parallel arrays indexed by pre rank
	Kind  []xdm.NodeKind
	Name  []string
	Value []string
	Size  []int
	Level []int
	Nodes []*xdm.Node

	// Attrs maps owner pre -> attribute pre list; attributes live in the
	// same arrays (their Size is 0 and Level is owner level+1).
	Attrs map[int][]int

	preOf map[*xdm.Node]int
}

// Shred encodes the tree rooted at root.
func Shred(root *xdm.Node) *Doc {
	d := &Doc{Attrs: map[int][]int{}, preOf: map[*xdm.Node]int{}}
	d.walk(root, 0)
	return d
}

// walk assigns pre ranks in document order; returns the subtree size
// (number of descendants including attributes).
func (d *Doc) walk(n *xdm.Node, level int) int {
	pre := len(d.Kind)
	d.Kind = append(d.Kind, n.Kind)
	d.Name = append(d.Name, n.Name)
	d.Value = append(d.Value, n.Value)
	d.Size = append(d.Size, 0) // patched below
	d.Level = append(d.Level, level)
	d.Nodes = append(d.Nodes, n)
	d.preOf[n] = pre
	size := 0
	for _, a := range n.Attrs {
		apre := len(d.Kind)
		d.Kind = append(d.Kind, xdm.AttributeNode)
		d.Name = append(d.Name, a.Name)
		d.Value = append(d.Value, a.Value)
		d.Size = append(d.Size, 0)
		d.Level = append(d.Level, level+1)
		d.Nodes = append(d.Nodes, a)
		d.preOf[a] = apre
		d.Attrs[pre] = append(d.Attrs[pre], apre)
		size++
	}
	for _, c := range n.Children {
		size += 1 + d.walk(c, level+1)
	}
	d.Size[pre] = size
	return size
}

// Len returns the number of encoded nodes.
func (d *Doc) Len() int { return len(d.Kind) }

// Pre returns the pre rank of a node (must belong to this doc).
func (d *Doc) Pre(n *xdm.Node) (int, bool) {
	p, ok := d.preOf[n]
	return p, ok
}

// Node materializes the node at a pre rank.
func (d *Doc) Node(pre int) *xdm.Node { return d.Nodes[pre] }

// isAttr reports whether pre is an attribute row.
func (d *Doc) isAttr(pre int) bool { return d.Kind[pre] == xdm.AttributeNode }

// Descendants returns all descendant pre ranks of p matching the test
// (excluding attributes), in document order — one staircase range scan.
func (d *Doc) Descendants(p int, test xdm.NodeTest) []int {
	var out []int
	end := p + d.Size[p]
	for q := p + 1; q <= end; q++ {
		if d.isAttr(q) {
			continue
		}
		if d.matches(q, test, xdm.AxisDescendant) {
			out = append(out, q)
		}
	}
	return out
}

// Children returns child pre ranks of p matching the test: the
// descendants one level down, skipped over by size.
func (d *Doc) Children(p int, test xdm.NodeTest) []int {
	var out []int
	end := p + d.Size[p]
	q := p + 1
	// skip attribute rows of p itself
	for q <= end && d.isAttr(q) && d.Level[q] == d.Level[p]+1 {
		q++
	}
	for q <= end {
		if d.matches(q, test, xdm.AxisChild) {
			out = append(out, q)
		}
		q += d.Size[q] + 1 // hop over the whole subtree
	}
	return out
}

// Attributes returns attribute pre ranks of p matching the test.
func (d *Doc) Attributes(p int, test xdm.NodeTest) []int {
	var out []int
	for _, a := range d.Attrs[p] {
		if test.Matches(d.Nodes[a], xdm.AxisAttribute) {
			out = append(out, a)
		}
	}
	return out
}

// Parent returns the parent pre rank of p (-1 at the root): the nearest
// preceding node whose region covers p.
func (d *Doc) Parent(p int) int {
	if d.isAttr(p) {
		// scan back to the owner element
		for q := p - 1; q >= 0; q-- {
			if !d.isAttr(q) {
				return q
			}
		}
		return -1
	}
	for q := p - 1; q >= 0; q-- {
		if !d.isAttr(q) && q+d.Size[q] >= p {
			return q
		}
	}
	return -1
}

// Step evaluates one axis step from each context pre rank, returning
// matching pre ranks in document order with duplicates removed.
func (d *Doc) Step(ctx []int, axis xdm.Axis, test xdm.NodeTest) []int {
	var out []int
	// a single context node cannot produce duplicates on these axes, so
	// skip the dedup map on the (very common) singleton fast path
	var seen map[int]bool
	if len(ctx) > 1 {
		seen = make(map[int]bool, 8)
	}
	add := func(q int) {
		if seen != nil {
			if seen[q] {
				return
			}
			seen[q] = true
		}
		out = append(out, q)
	}
	for _, p := range ctx {
		switch axis {
		case xdm.AxisChild:
			for _, q := range d.Children(p, test) {
				add(q)
			}
		case xdm.AxisDescendant:
			for _, q := range d.Descendants(p, test) {
				add(q)
			}
		case xdm.AxisDescendantOrSelf:
			if d.matches(p, test, axis) {
				add(p)
			}
			for _, q := range d.Descendants(p, test) {
				add(q)
			}
		case xdm.AxisAttribute:
			for _, q := range d.Attributes(p, test) {
				add(q)
			}
		case xdm.AxisSelf:
			if d.matches(p, test, axis) {
				add(p)
			}
		case xdm.AxisParent:
			if q := d.Parent(p); q >= 0 && d.matches(q, test, axis) {
				add(q)
			}
		default:
			// remaining axes fall back to the tree walker
			for _, n := range xdm.Step(d.Nodes[p], axis, test) {
				if q, ok := d.preOf[n]; ok {
					add(q)
				}
			}
		}
	}
	// pre ranks are document order; out was appended per-context so sort
	sortInts(out)
	return out
}

func (d *Doc) matches(q int, test xdm.NodeTest, axis xdm.Axis) bool {
	return test.Matches(d.Nodes[q], axis)
}

// StringValue returns the node string value at pre (concatenated text
// for elements/documents via the region scan).
func (d *Doc) StringValue(pre int) string {
	switch d.Kind[pre] {
	case xdm.ElementNode, xdm.DocumentNode:
		var out []byte
		end := pre + d.Size[pre]
		for q := pre + 1; q <= end; q++ {
			if d.Kind[q] == xdm.TextNode {
				out = append(out, d.Value[q]...)
			}
		}
		return string(out)
	default:
		return d.Value[pre]
	}
}

func sortInts(xs []int) { sort.Ints(xs) }

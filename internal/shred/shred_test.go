package shred

import (
	"testing"
	"testing/quick"

	"xrpc/internal/xdm"
)

const sample = `<films>
<film id="f1"><name>The Rock</name><actor>Sean Connery</actor></film>
<film id="f2"><name>Goldfinger</name><actor>Sean Connery</actor></film>
</films>`

func shredSample(t *testing.T) (*Doc, *xdm.Node) {
	t.Helper()
	doc, err := xdm.ParseDocument("f.xml", sample)
	if err != nil {
		t.Fatal(err)
	}
	return Shred(doc), doc
}

func TestPreSizeLevelInvariants(t *testing.T) {
	d, _ := shredSample(t)
	// pre 0 is the document node covering everything
	if d.Kind[0] != xdm.DocumentNode {
		t.Fatalf("pre 0 kind = %v", d.Kind[0])
	}
	if d.Size[0] != d.Len()-1 {
		t.Errorf("root size = %d, want %d", d.Size[0], d.Len()-1)
	}
	for p := 0; p < d.Len(); p++ {
		// region containment: p + size[p] < len
		if p+d.Size[p] >= d.Len()+1 {
			t.Errorf("pre %d region out of bounds", p)
		}
		// children regions nest strictly inside the parent region
		if q := d.Parent(p); p > 0 {
			if q < 0 {
				t.Errorf("pre %d has no parent", p)
				continue
			}
			if !(q < p && p+d.Size[p] <= q+d.Size[q]) {
				t.Errorf("pre %d not inside parent %d region", p, q)
			}
			if !d.isAttrTest(p) && d.Level[p] != d.Level[q]+1 {
				t.Errorf("pre %d level %d, parent level %d", p, d.Level[p], d.Level[q])
			}
		}
	}
}

func (d *Doc) isAttrTest(p int) bool { return d.Kind[p] == xdm.AttributeNode }

func TestStepsMatchTreeWalker(t *testing.T) {
	d, doc := shredSample(t)
	// every axis result from the shredded encoding must equal the tree
	// walker's result
	axes := []xdm.Axis{
		xdm.AxisChild, xdm.AxisDescendant, xdm.AxisDescendantOrSelf,
		xdm.AxisSelf, xdm.AxisParent, xdm.AxisAttribute,
	}
	tests := []xdm.NodeTest{
		{Name: "*"},
		{Name: "film"},
		{Name: "name"},
		{KindTest: true, AnyKind: true},
		{KindTest: true, Kind: xdm.TextNode},
	}
	var ctxNodes []*xdm.Node
	ctxNodes = append(ctxNodes, doc)
	ctxNodes = append(ctxNodes, xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{KindTest: true, AnyKind: true})...)
	for _, ctx := range ctxNodes {
		pre, ok := d.Pre(ctx)
		if !ok {
			t.Fatalf("node %v not in shred", ctx)
		}
		for _, axis := range axes {
			for _, test := range tests {
				want := xdm.Step(ctx, axis, test)
				gotPres := d.Step([]int{pre}, axis, test)
				if len(gotPres) != len(want) {
					t.Errorf("axis %v test %+v at pre %d: %d nodes, want %d",
						axis, test, pre, len(gotPres), len(want))
					continue
				}
				for i, q := range gotPres {
					if d.Node(q) != want[i] {
						t.Errorf("axis %v at pre %d: node %d mismatch", axis, pre, i)
					}
				}
			}
		}
	}
}

func TestStringValue(t *testing.T) {
	d, doc := shredSample(t)
	film := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})[0]
	pre, _ := d.Pre(film)
	if got := d.StringValue(pre); got != "The RockSean Connery" {
		t.Errorf("string value = %q", got)
	}
	name := xdm.Step(film, xdm.AxisChild, xdm.NodeTest{Name: "name"})[0]
	npre, _ := d.Pre(name)
	if got := d.StringValue(npre); got != "The Rock" {
		t.Errorf("name value = %q", got)
	}
}

func TestAttributes(t *testing.T) {
	d, doc := shredSample(t)
	films := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})
	pre, _ := d.Pre(films[1])
	attrs := d.Attributes(pre, xdm.NodeTest{Name: "id"})
	if len(attrs) != 1 {
		t.Fatalf("attrs = %d", len(attrs))
	}
	if d.Value[attrs[0]] != "f2" {
		t.Errorf("@id = %q", d.Value[attrs[0]])
	}
	// attribute's parent is the owner element
	if d.Parent(attrs[0]) != pre {
		t.Errorf("attr parent = %d, want %d", d.Parent(attrs[0]), pre)
	}
}

func TestMultiContextStepDedup(t *testing.T) {
	d, doc := shredSample(t)
	films := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})
	p1, _ := d.Pre(films[0])
	p2, _ := d.Pre(films[1])
	// descendant-or-self from both film nodes plus the root: text nodes
	// must come out once each, in document order
	rootPre, _ := d.Pre(doc)
	out := d.Step([]int{rootPre, p1, p2}, xdm.AxisDescendant, xdm.NodeTest{KindTest: true, Kind: xdm.TextNode})
	wantCount := len(xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{KindTest: true, Kind: xdm.TextNode}))
	if len(out) != wantCount {
		t.Errorf("dedup'd step = %d nodes, want %d", len(out), wantCount)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Error("step result not in document order")
		}
	}
}

// Property: for random small trees, shredded child/descendant steps
// agree with the tree walker.
func TestQuickShredAgreesWithWalker(t *testing.T) {
	f := func(shape []uint8) bool {
		// build a random tree: each byte adds a node under a previous one
		root := xdm.NewElement("r")
		nodes := []*xdm.Node{root}
		elems := []*xdm.Node{root}
		for i, b := range shape {
			if len(nodes) > 40 {
				break
			}
			parent := elems[int(b)%len(elems)]
			var child *xdm.Node
			if i%3 == 0 {
				child = xdm.NewText("t")
			} else {
				child = xdm.NewElement("e")
				elems = append(elems, child)
			}
			parent.AppendChild(child)
			nodes = append(nodes, child)
		}
		root.Seal()
		d := Shred(root)
		for _, n := range nodes {
			if n.Kind != xdm.ElementNode {
				continue
			}
			pre, ok := d.Pre(n)
			if !ok {
				return false
			}
			for _, axis := range []xdm.Axis{xdm.AxisChild, xdm.AxisDescendant, xdm.AxisParent} {
				want := xdm.Step(n, axis, xdm.NodeTest{KindTest: true, AnyKind: true})
				got := d.Step([]int{pre}, axis, xdm.NodeTest{KindTest: true, AnyKind: true})
				if len(got) != len(want) {
					return false
				}
				for i := range got {
					if d.Node(got[i]) != want[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

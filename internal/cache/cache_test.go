package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutVersionFence(t *testing.T) {
	c := New(1<<20, 0)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", "v1", 2, 1)
	v, ok := c.Get("k", 1)
	if !ok || v.(string) != "v1" {
		t.Fatalf("Get(k,1) = %v, %v; want v1, true", v, ok)
	}
	// a different version is the commit fence: stale entry is evicted
	if _, ok := c.Get("k", 2); ok {
		t.Fatal("served stale entry across a version step")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not removed: Len=%d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 2 misses, 1 eviction", st)
	}
}

func TestByteBoundEvictsLRU(t *testing.T) {
	c := New(100, 0)
	c.Put("a", 1, 40, 0)
	c.Put("b", 2, 40, 0)
	c.Get("a", 0) // touch a so b is the LRU victim
	c.Put("c", 3, 40, 0)
	if _, ok := c.Get("b", 0); ok {
		t.Fatal("LRU victim b survived")
	}
	if _, ok := c.Get("a", 0); !ok {
		t.Fatal("recently-used a evicted")
	}
	if _, ok := c.Get("c", 0); !ok {
		t.Fatal("newest entry c evicted")
	}
	if got := c.Bytes(); got > 100 {
		t.Fatalf("Bytes() = %d > bound 100", got)
	}
}

func TestEntryBound(t *testing.T) {
	c := New(0, 3)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1, 0)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d; want entry cap 3", c.Len())
	}
	for i := 7; i < 10; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i), 0); !ok {
			t.Fatalf("newest entry k%d missing", i)
		}
	}
}

func TestOversizeValueNotStored(t *testing.T) {
	c := New(10, 0)
	c.Put("big", 1, 11, 0)
	if c.Len() != 0 {
		t.Fatal("oversize value was stored")
	}
}

func TestReplaceAccountsBytes(t *testing.T) {
	c := New(100, 0)
	c.Put("k", 1, 60, 0)
	c.Put("k", 2, 30, 0)
	if got := c.Bytes(); got != 30 {
		t.Fatalf("Bytes after replace = %d; want 30", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after replace = %d; want 1", c.Len())
	}
}

func TestGetAnyAndRemoveFunc(t *testing.T) {
	c := New(0, 10)
	c.Put("x", "vx", 1, 7)
	v, ver, ok := c.GetAny("x")
	if !ok || v.(string) != "vx" || ver != 7 {
		t.Fatalf("GetAny = %v, %d, %v", v, ver, ok)
	}
	c.Put("y", "vy", 1, 7)
	n := c.RemoveFunc(func(key string, val any) bool { return key == "x" })
	if n != 1 || c.Len() != 1 {
		t.Fatalf("RemoveFunc removed %d, Len=%d; want 1, 1", n, c.Len())
	}
	if _, _, ok := c.GetAny("x"); ok {
		t.Fatal("x survived RemoveFunc")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1<<14, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, i, 64, int64(i%3))
				c.Get(k, int64(i%3))
				if i%50 == 0 {
					c.RemoveFunc(func(string, any) bool { return false })
					c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 1<<14 || c.Len() > 64 {
		t.Fatalf("bounds violated: %d bytes, %d entries", c.Bytes(), c.Len())
	}
}

// Package cache provides the bounded, version-fenced LRU that backs the
// three caching tiers of the serving stack: the per-shard response cache
// (internal/server), the coordinator merged-result cache
// (internal/cluster), and the normalized compiled-plan caches
// (internal/server, internal/pathfinder). One implementation, three
// policies: entries are bounded both by total byte size and by entry
// count, evicted least-recently-used first, and optionally fenced on a
// version tag — a lookup carrying a different version treats the entry
// as stale, removes it, and reports a miss (exact invalidation: the
// store's commit fence advances the version by exactly one step per
// committed write).
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is a mutex-guarded least-recently-used cache bounded by total
// byte size and entry count. The zero value is not usable; construct
// with New.
type LRU struct {
	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	bytes      int64
	ll         *list.List
	items      map[string]*list.Element

	// Hits / Misses / Evictions are cumulative counters (atomic:
	// experiments read them while concurrent requests cycle the cache).
	// Evictions counts capacity evictions and version-fence removals,
	// not explicit Remove/Clear calls.
	Hits      atomic.Int64
	Misses    atomic.Int64
	Evictions atomic.Int64
}

// lruEntry is one cached value with its accounting metadata.
type lruEntry struct {
	key  string
	val  any
	size int64
	ver  int64
}

// Stats is a point-in-time snapshot of a cache's counters and size.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int64
}

// New builds an empty LRU bounded by maxBytes total entry size and
// maxEntries entries. A non-positive bound means "no bound on that
// axis" (but at least one should be set — that is the point).
func New(maxBytes int64, maxEntries int) *LRU {
	return &LRU{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      map[string]*list.Element{},
	}
}

// Get returns the value stored under key if its version tag equals ver.
// A present entry with a different version is stale: it is removed,
// counted as an eviction, and the lookup reports a miss — this is the
// version fence (one committed write steps the store version, so the
// first post-commit lookup invalidates exactly the touched entries).
func (c *LRU) Get(key string, ver int64) (any, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.Misses.Add(1)
		return nil, false
	}
	e := el.Value.(*lruEntry)
	if e.ver != ver {
		c.removeLocked(el)
		c.mu.Unlock()
		c.Evictions.Add(1)
		c.Misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	val := e.val
	c.mu.Unlock()
	c.Hits.Add(1)
	return val, true
}

// GetAny returns the value and its stored version tag without fencing —
// for callers (the coordinator's merged-result cache) that validate
// freshness themselves against a per-shard version vector.
func (c *LRU) GetAny(key string) (any, int64, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.Misses.Add(1)
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*lruEntry)
	val, ver := e.val, e.ver
	c.mu.Unlock()
	c.Hits.Add(1)
	return val, ver, true
}

// Put stores val under key with the given size estimate and version
// tag, replacing any previous entry, then evicts LRU entries until both
// bounds hold. A single value larger than maxBytes is not stored.
func (c *LRU) Put(key string, val any, size, ver int64) {
	if size < 0 {
		size = 0
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(&lruEntry{key: key, val: val, size: size, ver: ver})
	c.items[key] = el
	c.bytes += size
	evicted := 0
	for (c.maxBytes > 0 && c.bytes > c.maxBytes) ||
		(c.maxEntries > 0 && c.ll.Len() > c.maxEntries) {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		c.removeLocked(back)
		evicted++
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.Evictions.Add(int64(evicted))
	}
}

// Remove deletes the entry under key (no eviction counted).
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	c.mu.Unlock()
}

// RemoveFunc deletes every entry the predicate matches, returning how
// many were removed — the granular invalidation behind
// InvalidateModule (drop only the plans that depend on one module).
func (c *LRU) RemoveFunc(pred func(key string, val any) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []*list.Element
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		if pred(e.key, e.val) {
			doomed = append(doomed, el)
		}
	}
	for _, el := range doomed {
		c.removeLocked(el)
	}
	return len(doomed)
}

// Clear empties the cache (counters are preserved).
func (c *LRU) Clear() {
	c.mu.Lock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
	c.bytes = 0
	c.mu.Unlock()
}

// Len returns the number of live entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed size of live entries.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats snapshots the counters and current size.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	entries, bytes := c.ll.Len(), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.Hits.Load(),
		Misses:    c.Misses.Load(),
		Evictions: c.Evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

func (c *LRU) removeLocked(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

package obs

import (
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	"log/slog"
	"time"
)

// NewTraceID mints a request trace ID: "t-" plus 8 random bytes in hex.
// Minted once at the front door (proxy or standalone server) and
// carried on the SOAP envelope so one client request is correlatable
// across every shard's slow-query log.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "t-0000000000000000"
	}
	return "t-" + hex.EncodeToString(b[:])
}

// QueryHash is a stable 64-bit FNV-1a hash of query or request text —
// what the slow-query log records instead of the (unbounded, possibly
// sensitive) text itself, so repeat offenders group under one key.
func QueryHash(text []byte) string {
	h := fnv.New64a()
	h.Write(text)
	var buf [8]byte
	return hex.EncodeToString(h.Sum(buf[:0]))
}

// SlowLog emits a structured record for requests slower than Threshold.
// The hot path calls Slow first — a nil check and one comparison — and
// only builds log attributes after it returns true, so the fast path
// pays nothing. A nil *SlowLog or zero Threshold disables logging.
type SlowLog struct {
	Logger    *slog.Logger
	Threshold time.Duration
}

// NewSlowLog returns a slow-query log writing to logger above
// threshold; nil logger or non-positive threshold disables it.
func NewSlowLog(logger *slog.Logger, threshold time.Duration) *SlowLog {
	if logger == nil || threshold <= 0 {
		return nil
	}
	return &SlowLog{Logger: logger, Threshold: threshold}
}

// Slow reports whether a request of duration d should be logged.
func (s *SlowLog) Slow(d time.Duration) bool {
	return s != nil && s.Threshold > 0 && d >= s.Threshold
}

// Log emits one slow-query record. Callers gate on Slow first.
func (s *SlowLog) Log(msg string, attrs ...any) {
	if s == nil || s.Logger == nil {
		return
	}
	s.Logger.Warn(msg, attrs...)
}

// Package obs is the cluster's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, a trace-ID helper for cross-shard request
// correlation, a structured slow-query log, and the debug HTTP mux that
// serves /metrics, /debug/pprof, /healthz and /readyz.
//
// Instruments are built for the hot path: a Counter is one atomic add,
// a Histogram observation is two atomic adds plus a CAS-looped float
// sum, and every label combination is resolved to a pre-rendered string
// at registration time so nothing on the request path formats labels or
// allocates. All instrument methods are nil-receiver safe, so
// instrumented code runs unchanged (and unmeasured) when no registry is
// wired in.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, pre-rendered at registration.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing value. The zero value is ready
// to use; a nil *Counter discards observations.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be >= 0 for the exported value to stay monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// atomicFloat is a float64 updated with a CAS loop over its bits —
// histogram sums need float addition without a lock.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets chosen at
// registration. Buckets are cumulative at export time only; Observe is
// a linear scan over the (small, fixed) bound slice plus three atomic
// updates and never allocates. A nil *Histogram discards observations.
type Histogram struct {
	bounds []float64      // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomicFloat
	total  atomic.Int64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// DefLatencyBuckets covers 100µs..10s — RPC round trips in the netsim
// land at the low end, WAN-profile runs at the high end.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets covers 256B..64MiB message and payload sizes.
var DefSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// metric is one registered time series within a family.
type metric struct {
	labels  string // pre-rendered `key="value",...` without braces, "" if unlabelled
	counter *Counter
	hist    *Histogram
	cfn     func() int64   // counter func (promoted external atomic)
	gfn     func() float64 // gauge func
}

// family groups series sharing a name, help string and type.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	metrics []*metric
}

// Registry holds registered instruments and renders them in Prometheus
// text exposition format. Registration takes a lock; using a registered
// instrument does not.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; export sorts for determinism
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) add(name, help, typ string, m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	f.metrics = append(f.metrics, m)
}

// NewCounter registers and returns a counter. A nil registry returns
// nil, which is safe to use and discards increments.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.add(name, help, "counter", &metric{labels: renderLabels(labels), counter: c})
	return c
}

// NewHistogram registers and returns a histogram over the given upper
// bounds (ascending; +Inf is implicit). A nil registry returns nil.
func (r *Registry) NewHistogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.add(name, help, "histogram", &metric{labels: renderLabels(labels), hist: h})
	return h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — how pre-existing atomic.Int64 fields (client request counts,
// cache hit counters, netsim byte totals) are promoted onto the
// registry without changing their owners' types or reset semantics.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, "counter", &metric{labels: renderLabels(labels), cfn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time (cache entry
// counts, resident bytes, store versions).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.add(name, help, "gauge", &metric{labels: renderLabels(labels), gfn: fn})
}

// CounterVec is a family of counters keyed by one label value resolved
// at use (e.g. per-method request counts). The read path is an RWMutex
// map hit; unseen values register a new series on first use.
type CounterVec struct {
	reg    *Registry
	name   string
	help   string
	key    string
	base   []Label
	mu     sync.RWMutex
	series map[string]*Counter
}

// NewCounterVec registers a counter family keyed by labelKey on top of
// the fixed base labels. A nil registry returns nil.
func (r *Registry) NewCounterVec(name, help, labelKey string, base ...Label) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{
		reg: r, name: name, help: help, key: labelKey,
		base: base, series: make(map[string]*Counter),
	}
}

// With returns the counter for the given label value, creating and
// registering it on first use. Safe on a nil vec (returns nil).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.series[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.series[value]; c != nil {
		return c
	}
	labels := make([]Label, 0, len(v.base)+1)
	labels = append(labels, v.base...)
	labels = append(labels, Label{Key: v.key, Value: value})
	c = v.reg.NewCounter(v.name, v.help, labels...)
	v.series[value] = c
	return c
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format. Families are sorted by name and series keep
// registration order, so output is deterministic for a fixed set of
// registrations — the property the golden test pins down.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		f := r.families[n]
		cp := *f
		cp.metrics = append([]*metric(nil), f.metrics...)
		fams[n] = &cp
	}
	r.mu.Unlock()
	sort.Strings(names)

	var buf []byte
	for _, n := range names {
		f := fams[n]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.name...)
		buf = append(buf, ' ')
		buf = append(buf, f.typ...)
		buf = append(buf, '\n')
		for _, m := range f.metrics {
			switch {
			case m.hist != nil:
				buf = m.hist.appendTo(buf, f.name, m.labels)
			case m.counter != nil:
				buf = appendSample(buf, f.name, m.labels, float64(m.counter.Value()))
			case m.cfn != nil:
				buf = appendSample(buf, f.name, m.labels, float64(m.cfn()))
			case m.gfn != nil:
				buf = appendSample(buf, f.name, m.labels, m.gfn())
			}
		}
	}
	_, err := w.Write(buf)
	return err
}

func appendSample(buf []byte, name, labels string, v float64) []byte {
	buf = append(buf, name...)
	if labels != "" {
		buf = append(buf, '{')
		buf = append(buf, labels...)
		buf = append(buf, '}')
	}
	buf = append(buf, ' ')
	buf = appendFloat(buf, v)
	return append(buf, '\n')
}

func appendFloat(buf []byte, v float64) []byte {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.AppendInt(buf, int64(v), 10)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendTo renders the histogram's cumulative buckets, sum and count.
func (h *Histogram) appendTo(buf []byte, name, labels string) []byte {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		buf = h.appendBucket(buf, name, labels, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	buf = h.appendBucket(buf, name, labels, "+Inf", cum)
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = appendLabelBlock(buf, labels)
	buf = append(buf, ' ')
	buf = appendFloat(buf, h.sum.load())
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = appendLabelBlock(buf, labels)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, cum, 10)
	return append(buf, '\n')
}

func (h *Histogram) appendBucket(buf []byte, name, labels, le string, cum int64) []byte {
	buf = append(buf, name...)
	buf = append(buf, "_bucket{"...)
	if labels != "" {
		buf = append(buf, labels...)
		buf = append(buf, ',')
	}
	buf = append(buf, `le="`...)
	buf = append(buf, le...)
	buf = append(buf, `"} `...)
	buf = strconv.AppendInt(buf, cum, 10)
	return append(buf, '\n')
}

func appendLabelBlock(buf []byte, labels string) []byte {
	if labels == "" {
		return buf
	}
	buf = append(buf, '{')
	buf = append(buf, labels...)
	return append(buf, '}')
}

// Gather returns the current value of a counter-typed series by family
// name and rendered label match — a test convenience, not a hot path.
func (r *Registry) Gather(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	want := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		return 0, false
	}
	for _, m := range f.metrics {
		if m.labels != want {
			continue
		}
		switch {
		case m.counter != nil:
			return float64(m.counter.Value()), true
		case m.cfn != nil:
			return float64(m.cfn()), true
		case m.gfn != nil:
			return m.gfn(), true
		case m.hist != nil:
			return float64(m.hist.Count()), true
		}
	}
	return 0, false
}

// MustGather is Gather that panics with a descriptive message when the
// series is absent — keeps smoke-test assertions terse.
func (r *Registry) MustGather(name string, labels ...Label) float64 {
	v, ok := r.Gather(name, labels...)
	if !ok {
		panic(fmt.Sprintf("obs: no series %s{%s}", name, renderLabels(labels)))
	}
	return v
}

package obs

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPrometheusGolden pins the full exposition format: HELP/TYPE
// lines, label rendering, cumulative histogram buckets with _sum and
// _count, counter funcs and gauge funcs, families sorted by name.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()

	c := reg.NewCounter("xrpc_test_requests_total", "Requests handled.", Label{"shard", "0"})
	c.Add(3)
	reg.CounterFunc("xrpc_test_promoted_total", "Promoted external counter.", func() int64 { return 42 })
	reg.GaugeFunc("xrpc_test_entries", "Entries resident.", func() float64 { return 7 })
	h := reg.NewHistogram("xrpc_test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1}, Label{"shard", "0"})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	v := reg.NewCounterVec("xrpc_test_calls_total", "Calls by method.", "method")
	v.With("get").Add(2)
	v.With("put").Inc()

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP xrpc_test_calls_total Calls by method.
# TYPE xrpc_test_calls_total counter
xrpc_test_calls_total{method="get"} 2
xrpc_test_calls_total{method="put"} 1
# HELP xrpc_test_entries Entries resident.
# TYPE xrpc_test_entries gauge
xrpc_test_entries 7
# HELP xrpc_test_latency_seconds Request latency.
# TYPE xrpc_test_latency_seconds histogram
xrpc_test_latency_seconds_bucket{shard="0",le="0.01"} 1
xrpc_test_latency_seconds_bucket{shard="0",le="0.1"} 3
xrpc_test_latency_seconds_bucket{shard="0",le="1"} 3
xrpc_test_latency_seconds_bucket{shard="0",le="+Inf"} 4
xrpc_test_latency_seconds_sum{shard="0"} 5.105
xrpc_test_latency_seconds_count{shard="0"} 4
# HELP xrpc_test_promoted_total Promoted external counter.
# TYPE xrpc_test_promoted_total counter
xrpc_test_promoted_total 42
# HELP xrpc_test_requests_total Requests handled.
# TYPE xrpc_test_requests_total counter
xrpc_test_requests_total{shard="0"} 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping checks backslash, quote and newline escaping in
// label values per the exposition format.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "h", Label{"k", "a\"b\\c\nd"}).Inc()
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	want := `x_total{k="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample %q not found in:\n%s", want, b.String())
	}
}

// TestNilSafety: every instrument method must be a no-op on nil
// receivers so uninstrumented deployments run the same code.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.NewCounter("a_total", "h")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	h := reg.NewHistogram("b_seconds", "h", DefLatencyBuckets)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Error("nil histogram has a count")
	}
	v := reg.NewCounterVec("c_total", "h", "k")
	v.With("x").Inc()
	reg.CounterFunc("d_total", "h", func() int64 { return 1 })
	reg.GaugeFunc("e", "h", func() float64 { return 1 })
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var sl *SlowLog
	if sl.Slow(time.Hour) {
		t.Error("nil slow log claims slow")
	}
	sl.Log("nope")
}

// TestRegistryRace hammers counters, histograms, vec creation and
// concurrent scrapes; run under -race this is the registry's thread
// safety proof.
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("race_total", "h")
	h := reg.NewHistogram("race_seconds", "h", DefLatencyBuckets)
	v := reg.NewCounterVec("race_vec_total", "h", "worker")
	var wg sync.WaitGroup
	const workers, iters = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				v.With(name).Inc()
				if i%500 == 0 {
					reg.WritePrometheus(&bytes.Buffer{})
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := v.With(string(rune('a' + w))).Value(); got != iters {
			t.Errorf("vec[%c] = %d, want %d", 'a'+w, got, iters)
		}
	}
}

// TestInstrumentAllocs: the hot-path operations must not allocate.
func TestInstrumentAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("alloc_total", "h")
	h := reg.NewHistogram("alloc_seconds", "h", DefLatencyBuckets)
	v := reg.NewCounterVec("alloc_vec_total", "h", "m")
	v.With("warm") // series creation allocates; warm it first
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.003)
		v.With("warm").Inc()
	}); n != 0 {
		t.Errorf("hot-path instruments allocate %.1f times per op, want 0", n)
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("mux_total", "h").Inc()
	readyErr := error(nil)
	mux := DebugMux(reg, func() error { return readyErr })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "mux_total 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz: code=%d", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz ready: code=%d", code)
	}
	readyErr = errTest{}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "boom") {
		t.Errorf("/readyz not ready: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code=%d", code)
	}
}

type errTest struct{}

func (errTest) Error() string { return "boom" }

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	sl := NewSlowLog(slog.New(slog.NewTextHandler(&buf, nil)), 10*time.Millisecond)
	if sl.Slow(5 * time.Millisecond) {
		t.Error("5ms counted as slow with 10ms threshold")
	}
	if !sl.Slow(20 * time.Millisecond) {
		t.Error("20ms not slow with 10ms threshold")
	}
	sl.Log("slow query", "trace_id", "t-1234", "dur_ms", 20)
	if out := buf.String(); !strings.Contains(out, "t-1234") || !strings.Contains(out, "slow query") {
		t.Errorf("slow log output missing fields: %q", out)
	}
	if NewSlowLog(nil, time.Second) != nil {
		t.Error("nil logger should disable slow log")
	}
	if NewSlowLog(slog.Default(), 0) != nil {
		t.Error("zero threshold should disable slow log")
	}
}

func TestTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Errorf("trace IDs collide: %s", a)
	}
	if !strings.HasPrefix(a, "t-") || len(a) != 18 {
		t.Errorf("malformed trace id %q", a)
	}
	if QueryHash([]byte("q1")) == QueryHash([]byte("q2")) {
		t.Error("query hash collision on distinct inputs")
	}
	if QueryHash([]byte("q1")) != QueryHash([]byte("q1")) {
		t.Error("query hash unstable")
	}
}

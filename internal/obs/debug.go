package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the operator-facing HTTP mux served on -debug-addr:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/pprof/  the standard pprof handlers
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/healthz       liveness — 200 whenever the process serves HTTP
//	/readyz        readiness — 200 when ready() returns nil, else 503
//	               with the error text (docs loaded, modules registered,
//	               routing table valid)
//
// ready may be nil, in which case /readyz always reports ready. The
// pprof handlers are registered explicitly because this mux is not
// http.DefaultServeMux.
func DebugMux(reg *Registry, ready func() error) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if ready != nil {
			if err := ready(); err != nil {
				http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	return mux
}

package xq

import (
	"strings"

	"xrpc/internal/xdm"
)

// Expr is an XQuery expression AST node.
type Expr interface{ exprNode() }

// StringLit is a string literal.
type StringLit struct{ Val string }

// IntLit is an xs:integer literal.
type IntLit struct{ Val int64 }

// DecimalLit is an xs:decimal literal.
type DecimalLit struct{ Val float64 }

// DoubleLit is an xs:double literal.
type DoubleLit struct{ Val float64 }

// VarRef references a bound variable ($name).
type VarRef struct{ Name string }

// ContextItem is the "." expression.
type ContextItem struct{}

// SeqExpr is the comma operator: concatenation of sub-sequences.
type SeqExpr struct{ Items []Expr }

// EmptySeq is "()".
type EmptySeq struct{}

// RangeExpr is "Lo to Hi".
type RangeExpr struct{ Lo, Hi Expr }

// Arith is an arithmetic expression (+ - * div idiv mod).
type Arith struct {
	Op   string
	L, R Expr
}

// Unary is unary minus/plus.
type Unary struct {
	Neg bool
	X   Expr
}

// Comparison covers value comparisons (eq ne lt le gt ge), general
// comparisons (= != < <= > >=) and node comparisons (is << >>).
type Comparison struct {
	Op      string
	General bool
	Node    bool
	L, R    Expr
}

// Logic is "and" / "or".
type Logic struct {
	Op   string
	L, R Expr
}

// UnionExpr is "|" / "union" between node sequences.
type UnionExpr struct{ L, R Expr }

// If is if (C) then T else E.
type If struct{ Cond, Then, Else Expr }

// ForClause is one "for $v [at $p] in E" binding of a FLWOR.
type ForClause struct {
	Var    string
	PosVar string // "" when absent
	In     Expr
}

// LetClause is one "let $v := E" binding.
type LetClause struct {
	Var string
	Val Expr
}

// FLWORClause is a for or let clause.
type FLWORClause interface{ flworClause() }

func (*ForClause) flworClause() {}
func (*LetClause) flworClause() {}

// OrderSpec is one "order by" key.
type OrderSpec struct {
	Key        Expr
	Descending bool
}

// FLWOR is a for/let/where/order by/return expression.
type FLWOR struct {
	Clauses []FLWORClause
	Where   Expr // nil when absent
	OrderBy []OrderSpec
	Return  Expr
}

// Quantified is "some/every $v in E satisfies P".
type Quantified struct {
	Every     bool
	Var       string
	In        Expr
	Satisfies Expr
}

// Step is one axis step of a path, with predicates.
type Step struct {
	Axis  xdm.Axis
	Test  xdm.NodeTest
	Preds []Expr
}

// Path is a path expression: an optional root expression (nil means the
// path is rooted at "/" or the context item), followed by steps. Filter
// is the primary-expression-with-predicates form.
type Path struct {
	Root      Expr // nil: rooted per FromRoot
	FromRoot  bool // leading "/" or "//"
	DescRoot  bool // leading "//" (implicit descendant-or-self::node())
	Steps     []Step
	RootPreds []Expr // predicates applied to Root before steps (filter expr)
}

// FuncCall is a (possibly prefixed) static function call.
type FuncCall struct {
	Name string
	Args []Expr
}

// ExecuteAt is the XRPC extension: execute at {Dest} {Call}.
type ExecuteAt struct {
	Dest Expr
	Call *FuncCall
}

// DirAttr is an attribute in a direct element constructor; the value is
// a concatenation of string literals and enclosed expressions.
type DirAttr struct {
	Name  string
	Value []Expr
}

// DirElem is a direct element constructor <name attr="...">content</name>.
// Content items are StringLit (literal text), nested DirElem, or
// arbitrary enclosed expressions.
type DirElem struct {
	Name    string
	Attrs   []DirAttr
	Content []Expr
}

// Enclosed marks an enclosed expression { E } inside constructor content,
// whose sequence value is inserted with space-separated atomics.
type Enclosed struct{ X Expr }

// CompElem is a computed element constructor: element {name} {content}.
type CompElem struct {
	Name    Expr
	Content Expr
}

// CompAttr is a computed attribute constructor.
type CompAttr struct {
	Name  Expr
	Value Expr
}

// CompText is a computed text node constructor: text {E}.
type CompText struct{ Val Expr }

// TypeswitchCase is one "case [$var as] SequenceType return Expr" branch.
type TypeswitchCase struct {
	Var  string // optional binding variable ("" when absent)
	Type SeqType
	Ret  Expr
}

// Typeswitch is "typeswitch (E) case ... default [$var] return Expr".
type Typeswitch struct {
	Operand    Expr
	Cases      []TypeswitchCase
	DefaultVar string
	Default    Expr
}

// Cast is "E cast as T".
type Cast struct {
	X    Expr
	Type string
}

// Castable is "E castable as T".
type Castable struct {
	X    Expr
	Type string
}

// InstanceOf is "E instance of T" (occurrence-aware, simple types only).
type InstanceOf struct {
	X    Expr
	Type SeqType
}

// InsertPos says where "insert node" places the new nodes.
type InsertPos int

// Insert positions.
const (
	InsertInto InsertPos = iota
	InsertAsFirst
	InsertAsLast
	InsertBefore
	InsertAfter
)

// Insert is the XQUF "insert node(s) Source ... Target" expression.
type Insert struct {
	Source Expr
	Pos    InsertPos
	Target Expr
}

// Delete is the XQUF "delete node(s) Target" expression.
type Delete struct{ Target Expr }

// Replace is the XQUF "replace [value of] node Target with Source".
type Replace struct {
	ValueOf bool
	Target  Expr
	Source  Expr
}

// Rename is the XQUF "rename node Target as NewName".
type Rename struct {
	Target  Expr
	NewName Expr
}

func (*StringLit) exprNode()   {}
func (*IntLit) exprNode()      {}
func (*DecimalLit) exprNode()  {}
func (*DoubleLit) exprNode()   {}
func (*VarRef) exprNode()      {}
func (*ContextItem) exprNode() {}
func (*SeqExpr) exprNode()     {}
func (*EmptySeq) exprNode()    {}
func (*RangeExpr) exprNode()   {}
func (*Arith) exprNode()       {}
func (*Unary) exprNode()       {}
func (*Comparison) exprNode()  {}
func (*Logic) exprNode()       {}
func (*UnionExpr) exprNode()   {}
func (*If) exprNode()          {}
func (*FLWOR) exprNode()       {}
func (*Quantified) exprNode()  {}
func (*Path) exprNode()        {}
func (*FuncCall) exprNode()    {}
func (*ExecuteAt) exprNode()   {}
func (*DirElem) exprNode()     {}
func (*Enclosed) exprNode()    {}
func (*CompElem) exprNode()    {}
func (*CompAttr) exprNode()    {}
func (*CompText) exprNode()    {}
func (*Cast) exprNode()        {}
func (*Typeswitch) exprNode()  {}
func (*Castable) exprNode()    {}
func (*InstanceOf) exprNode()  {}
func (*Insert) exprNode()      {}
func (*Delete) exprNode()      {}
func (*Replace) exprNode()     {}
func (*Rename) exprNode()      {}

// SeqType is a sequence type: an item type name plus occurrence
// indicator. Occurrence is one of '1', '?', '*', '+'; Empty means
// "empty-sequence()".
type SeqType struct {
	TypeName   string // "xs:string", "node()", "element()", "item()", ...
	Occurrence byte
	Empty      bool
}

// String renders the sequence type in XQuery syntax.
func (t SeqType) String() string {
	if t.Empty {
		return "empty-sequence()"
	}
	if t.Occurrence == '1' || t.Occurrence == 0 {
		return t.TypeName
	}
	return t.TypeName + string(t.Occurrence)
}

// Param is a declared function parameter.
type Param struct {
	Name string
	Type SeqType
}

// FuncDecl is a user-defined function declaration.
type FuncDecl struct {
	Name     string // prefixed QName as written
	Params   []Param
	Return   SeqType
	Updating bool
	External bool
	Body     Expr
}

// Arity returns the number of parameters.
func (f *FuncDecl) Arity() int { return len(f.Params) }

// LocalName returns the name without its prefix.
func (f *FuncDecl) LocalName() string {
	if i := strings.IndexByte(f.Name, ':'); i >= 0 {
		return f.Name[i+1:]
	}
	return f.Name
}

// VarDecl is a prolog variable declaration.
type VarDecl struct {
	Name string
	Type SeqType
	Val  Expr
}

// ModuleImport records "import module namespace p = uri at hint".
type ModuleImport struct {
	Prefix  string
	URI     string
	AtHints []string
}

// Module is a parsed query or library module.
type Module struct {
	IsLibrary    bool
	ModulePrefix string // library modules: declared prefix
	ModuleURI    string // library modules: target namespace
	Namespaces   map[string]string
	Options      map[string]string // e.g. "xrpc:isolation" -> "repeatable"
	Imports      []ModuleImport
	Variables    []*VarDecl
	Functions    []*FuncDecl
	Body         Expr // nil for library modules
}

// Function finds a declared function by local or prefixed name and arity.
func (m *Module) Function(name string, arity int) *FuncDecl {
	for _, f := range m.Functions {
		if f.Arity() != arity {
			continue
		}
		if f.Name == name || f.LocalName() == localOf(name) {
			return f
		}
	}
	return nil
}

func localOf(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[i+1:]
	}
	return name
}

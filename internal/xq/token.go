// Package xq implements the XQuery 1.0 subset used by the XRPC
// reproduction: a hand-written lexer, an AST, and a recursive-descent
// parser for the grammar of §2 of the paper, including the `execute at`
// XRPC extension and the XQuery Update Facility expressions of §2.3.
package xq

import (
	"fmt"
	"strings"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF     TokKind = iota
	TokName            // NCName or QName (possibly prefixed)
	TokString          // string literal (quotes stripped, escapes resolved)
	TokInteger         // integer literal
	TokDecimal         // decimal literal (has '.')
	TokDouble          // double literal (has exponent)
	TokSymbol          // punctuation / operator symbol
)

// Token is one lexical token with its source span.
type Token struct {
	Kind TokKind
	Text string
	Pos  int // byte offset of token start
	End  int // byte offset just past the token
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Is reports whether the token is the given symbol or keyword text.
func (t Token) Is(text string) bool {
	return (t.Kind == TokSymbol || t.Kind == TokName) && t.Text == text
}

// lexer scans tokens on demand; the parser can also read raw characters
// (for direct element constructors) by consulting src/pos directly.
type lexer struct {
	src string
	pos int
}

// SyntaxError is a parse error with position info.
type SyntaxError struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xquery syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errorf(pos int, format string, args ...any) *SyntaxError {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &SyntaxError{Pos: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipWS() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// XQuery comments: (: ... :) with nesting
		if c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':' {
			depth := 0
			i := l.pos
			for i < len(l.src) {
				if i+1 < len(l.src) && l.src[i] == '(' && l.src[i+1] == ':' {
					depth++
					i += 2
					continue
				}
				if i+1 < len(l.src) && l.src[i] == ':' && l.src[i+1] == ')' {
					depth--
					i += 2
					if depth == 0 {
						break
					}
					continue
				}
				i++
			}
			l.pos = i
			continue
		}
		break
	}
}

func isNameStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || c >= '0' && c <= '9'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// multi-char symbols, longest first.
var symbols = []string{
	":=", "!=", "<=", ">=", "<<", ">>", "//", "..", "::",
	"{", "}", "(", ")", "[", "]", ",", ";", "$", "@", "/", "*", "+", "-",
	"=", "<", ">", "|", ".", "?",
}

// next scans the next token starting at l.pos.
func (l *lexer) next() (Token, error) {
	l.skipWS()
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, End: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isNameStart(c):
		return l.scanName(start), nil
	case isDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.scanNumber(start)
	case c == '"' || c == '\'':
		return l.scanString(start)
	}
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			l.pos += len(s)
			return Token{Kind: TokSymbol, Text: s, Pos: start, End: l.pos}, nil
		}
	}
	return Token{}, l.errorf(start, "unexpected character %q", c)
}

func (l *lexer) scanName(start int) Token {
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	// QName: prefix:local — but not "::" (axis) and not "a:=b".
	if l.pos < len(l.src) && l.src[l.pos] == ':' &&
		l.pos+1 < len(l.src) && isNameStart(l.src[l.pos+1]) &&
		!(l.pos+1 < len(l.src) && l.src[l.pos+1] == ':') {
		// lookahead to rule out axis "name::"
		save := l.pos
		l.pos++
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		_ = save
	}
	return Token{Kind: TokName, Text: l.src[start:l.pos], Pos: start, End: l.pos}
}

func (l *lexer) scanNumber(start int) (Token, error) {
	kind := TokInteger
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		// ".." must not be consumed by a number (range "1..2" is not
		// XQuery, but "$a/.." style appears after names only; still be
		// careful).
		if !(l.pos+1 < len(l.src) && l.src[l.pos+1] == '.') {
			kind = TokDecimal
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		kind = TokDouble
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.src) || !isDigit(l.src[l.pos]) {
			return Token{}, l.errorf(l.pos, "malformed double literal")
		}
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start, End: l.pos}, nil
}

func (l *lexer) scanString(start int) (Token, error) {
	quote := l.src[l.pos]
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote) // doubled quote escape
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start, End: l.pos}, nil
		}
		if c == '&' {
			ent, n, err := scanEntity(l.src[l.pos:])
			if err != nil {
				return Token{}, l.errorf(l.pos, "%v", err)
			}
			b.WriteString(ent)
			l.pos += n
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, l.errorf(start, "unterminated string literal")
}

// scanEntity resolves a predefined or character entity reference at the
// start of s, returning the replacement text and consumed length.
func scanEntity(s string) (string, int, error) {
	end := strings.IndexByte(s, ';')
	if end < 0 || end > 12 {
		return "", 0, fmt.Errorf("malformed entity reference")
	}
	name := s[1:end]
	switch name {
	case "lt":
		return "<", end + 1, nil
	case "gt":
		return ">", end + 1, nil
	case "amp":
		return "&", end + 1, nil
	case "quot":
		return `"`, end + 1, nil
	case "apos":
		return "'", end + 1, nil
	}
	if strings.HasPrefix(name, "#x") || strings.HasPrefix(name, "#X") {
		var r rune
		if _, err := fmt.Sscanf(name[2:], "%x", &r); err != nil {
			return "", 0, fmt.Errorf("malformed character reference &%s;", name)
		}
		return string(r), end + 1, nil
	}
	if strings.HasPrefix(name, "#") {
		var r rune
		if _, err := fmt.Sscanf(name[1:], "%d", &r); err != nil {
			return "", 0, fmt.Errorf("malformed character reference &%s;", name)
		}
		return string(r), end + 1, nil
	}
	return "", 0, fmt.Errorf("unknown entity &%s;", name)
}

package xq

import "strings"

// Normalize canonicalizes XQuery source for use as a cache key: runs of
// whitespace collapse to a single space, (: ... :) comments (nested,
// per the lexer) are replaced by a single separator space, and leading/
// trailing separators are trimmed — so two modules that differ only in
// layout or commentary share one compiled plan.
//
// The result is a KEY, never compiled itself — compilation always uses
// the original source. That asymmetry sets the safety bar: Normalize
// may keep semantically-equal texts distinct (a missed sharing
// opportunity), but must never map semantically-different texts to one
// key. Two regions are therefore copied verbatim, mirroring the lexer:
//
//   - string literals ("..." / '...', doubled-quote escapes): their
//     content is significant, including whitespace and "(:";
//   - everything from the first '<' that opens a direct element
//     constructor (or "<!"/"<?") to the end of the source: constructor
//     content is raw-character-significant (the parser reads raw
//     characters there, and "(:...:)" inside it is literal text), and
//     the lexer itself only distinguishes less-than from constructor by
//     grammar position, which a flat scan cannot reproduce.
func Normalize(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	pending := false // a separator is owed before the next emitted byte
	var last byte
	// sep settles an owed separator before emitting a byte starting
	// with next: the space is kept only where dropping it could fuse
	// the neighbors into a different token (name/number chars running
	// together, two-char symbols like := << .. //, QName/axis/comment
	// colons) — everywhere else, "a ;" and "a;" tokenize identically,
	// so the separator is dropped and the texts share a key.
	sep := func(next byte) {
		if pending && b.Len() > 0 && canFuse(last, next) {
			b.WriteByte(' ')
		}
		pending = false
	}
	emit := func(s string) {
		if len(s) == 0 {
			return
		}
		sep(s[0])
		b.WriteString(s)
		last = s[len(s)-1]
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			pending = true
			i++
		case c == '(' && i+1 < len(src) && src[i+1] == ':':
			// nested comment, same algorithm as lexer.skipWS; an
			// unterminated comment runs to EOF there too
			depth := 0
			for i < len(src) {
				if i+1 < len(src) && src[i] == '(' && src[i+1] == ':' {
					depth++
					i += 2
					continue
				}
				if i+1 < len(src) && src[i] == ':' && src[i+1] == ')' {
					depth--
					i += 2
					if depth == 0 {
						break
					}
					continue
				}
				i++
			}
			pending = true
		case c == '"' || c == '\'':
			// string literal: verbatim, quotes included; a doubled
			// quote is an escape, not the terminator
			quote := c
			j := i + 1
			for j < len(src) {
				if src[j] == quote {
					if j+1 < len(src) && src[j+1] == quote {
						j += 2
						continue
					}
					j++
					break
				}
				j++
			}
			emit(src[i:j])
			i = j
		case c == '<' && i+1 < len(src) &&
			(isNameStart(src[i+1]) || src[i+1] == '!' || src[i+1] == '?'):
			// possible direct constructor: stop normalizing, tail is
			// copied byte-for-byte
			emit(src[i:])
			return b.String()
		default:
			emit(src[i : i+1])
			i++
		}
	}
	return b.String()
}

// canFuse reports whether bytes a and b, if made adjacent, could lex
// as part of one token where separated they are two — exactly the
// cases where a normalized key must keep an explicit separator.
// Over-reporting only costs sharing, never correctness.
func canFuse(a, b byte) bool {
	if isNameChar(a) && isNameChar(b) {
		return true // names and numbers run together ('.','-' included)
	}
	if a == ':' || b == ':' {
		return true // :=, ::, (:, :), and QName prefix:local boundaries
	}
	switch a {
	case '!':
		return b == '='
	case '<':
		return b == '=' || b == '<'
	case '>':
		return b == '=' || b == '>'
	case '/':
		return b == '/'
	}
	return false
}

package xq

import (
	"strings"
	"testing"
)

func TestNormalizeCollapsesLayout(t *testing.T) {
	a := "module namespace f = \"urn:f\";\ndeclare function f:one() { 1 + 2 };\n"
	b := "module   namespace f =\t\"urn:f\" ;\n\n  declare function f:one()\r\n{ 1 + 2 } ;"
	na, nb := Normalize(a), Normalize(b)
	if na != nb {
		t.Fatalf("layout variants normalize differently:\n%q\n%q", na, nb)
	}
}

func TestNormalizeStripsComments(t *testing.T) {
	a := "for $x in (1,2) return $x"
	b := "for $x in (: a (: nested :) comment :) (1,2) return $x"
	if Normalize(a) != Normalize(b) {
		t.Fatalf("comment variant normalizes differently:\n%q\n%q", Normalize(a), Normalize(b))
	}
}

func TestNormalizeCommentIsSeparator(t *testing.T) {
	// a(:c:)b lexes as two names; ab as one — must stay distinct keys
	if Normalize("a(:c:)b") == Normalize("ab") {
		t.Fatal("comment-separated names collapsed into one key")
	}
	if got := Normalize("a(:c:)b"); got != "a b" {
		t.Fatalf("Normalize(a(:c:)b) = %q; want %q", got, "a b")
	}
}

func TestNormalizeKeepsStringsVerbatim(t *testing.T) {
	src := `concat("two  spaces", 'it''s', "a (: not a comment :) b")`
	got := Normalize(src)
	for _, lit := range []string{`"two  spaces"`, `'it''s'`, `"a (: not a comment :) b"`} {
		if !strings.Contains(got, lit) {
			t.Fatalf("literal %s altered: %q", lit, got)
		}
	}
	if Normalize(`"a  b"`) == Normalize(`"a b"`) {
		t.Fatal("distinct string literals share a key")
	}
}

func TestNormalizeStopsAtConstructor(t *testing.T) {
	// constructor content is raw-character-significant: both the
	// whitespace and the "(:" inside must survive byte-for-byte
	tail := "<a>  two  spaces (: literal :) {1+1}</a>"
	src := "declare   function f:mk() {   " + tail
	got := Normalize(src)
	if !strings.Contains(got, tail) {
		t.Fatalf("constructor tail altered:\n src=%q\n got=%q", src, got)
	}
	// whitespace after the first constructor must NOT collapse
	a := "1, <a>x</a>,   <b>y</b>"
	b := "1, <a>x</a>, <b>y</b>"
	if Normalize(a) == Normalize(b) {
		t.Fatal("post-constructor text was normalized")
	}
}

func TestNormalizeLessThanIsNotConstructor(t *testing.T) {
	// '<' before a space or digit is a comparison and normalizes fine
	a := "if (1 <   2) then 1 else 2"
	b := "if (1 < 2) then 1 else 2"
	if Normalize(a) != Normalize(b) {
		t.Fatalf("comparison variants differ: %q vs %q", Normalize(a), Normalize(b))
	}
}

func TestNormalizeTrimsEnds(t *testing.T) {
	if got := Normalize("  \n 1 + 1 \t(: tail :) "); got != "1+1" {
		t.Fatalf("Normalize = %q; want %q", got, "1+1")
	}
	if got := Normalize(""); got != "" {
		t.Fatalf("Normalize(empty) = %q", got)
	}
}

// semantics-preservation spot check: normalized text of a comment-free,
// constructor-free module still parses to the same shape
func TestNormalizedSourceStillParses(t *testing.T) {
	src := "module namespace f = \"urn:f\";\ndeclare function f:q($d) { for $x in $d//item return $x };"
	if _, err := Parse(src); err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	if _, err := Parse(Normalize(src)); err != nil {
		t.Fatalf("normalized source does not parse: %v\n%q", err, Normalize(src))
	}
}

package xq

import (
	"strconv"
	"strings"

	"xrpc/internal/xdm"
)

// Parse parses a complete XQuery main module or library module.
func Parse(src string) (*Module, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ParseExpr parses a single expression (no prolog).
func ParseExpr(src string) (Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errorf("unexpected %s after expression", p.tok)
	}
	return e, nil
}

type parser struct {
	lex    *lexer
	tok    Token
	peeked *Token
}

func (p *parser) errorf(format string, args ...any) error {
	return p.lex.errorf(p.tok.Pos, format, args...)
}

func (p *parser) advance() error {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// peek returns the token after the current one without consuming it.
func (p *parser) peek() (Token, error) {
	if p.peeked == nil {
		t, err := p.lex.next()
		if err != nil {
			return Token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

// expect consumes the current token if it matches text, else errors.
func (p *parser) expect(text string) error {
	if !p.tok.Is(text) {
		return p.errorf("expected %q, found %s", text, p.tok)
	}
	return p.advance()
}

// accept consumes the token if it matches, reporting whether it did.
func (p *parser) accept(text string) (bool, error) {
	if p.tok.Is(text) {
		return true, p.advance()
	}
	return false, nil
}

// ---------------------------------------------------------------- prolog

func (p *parser) parseModule() (*Module, error) {
	m := &Module{
		Namespaces: map[string]string{
			"xs":    "http://www.w3.org/2001/XMLSchema",
			"fn":    "http://www.w3.org/2005/xpath-functions",
			"xrpc":  "http://monetdb.cwi.nl/XQuery",
			"local": "http://www.w3.org/2005/xquery-local-functions",
		},
		Options: map[string]string{},
	}
	// optional version declaration
	if p.tok.Is("xquery") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("version"); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, p.errorf("expected version string")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	// module declaration (library module)
	if p.tok.Is("module") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("namespace"); err != nil {
			return nil, err
		}
		prefix := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokString {
			return nil, p.errorf("expected namespace URI string")
		}
		m.IsLibrary = true
		m.ModulePrefix = prefix
		m.ModuleURI = p.tok.Text
		m.Namespaces[prefix] = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	// prolog declarations
	for {
		switch {
		case p.tok.Is("declare"):
			if err := p.parseDeclare(m); err != nil {
				return nil, err
			}
		case p.tok.Is("import"):
			if err := p.parseImport(m); err != nil {
				return nil, err
			}
		default:
			goto body
		}
	}
body:
	if m.IsLibrary {
		if p.tok.Kind != TokEOF {
			return nil, p.errorf("library module cannot have a body (found %s)", p.tok)
		}
		return m, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errorf("unexpected %s after query body", p.tok)
	}
	m.Body = e
	return m, nil
}

func (p *parser) parseDeclare(m *Module) error {
	if err := p.advance(); err != nil { // consume "declare"
		return err
	}
	switch {
	case p.tok.Is("namespace"):
		if err := p.advance(); err != nil {
			return err
		}
		prefix := p.tok.Text
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		if p.tok.Kind != TokString {
			return p.errorf("expected namespace URI string")
		}
		m.Namespaces[prefix] = p.tok.Text
		if err := p.advance(); err != nil {
			return err
		}
		return p.expect(";")
	case p.tok.Is("option"):
		if err := p.advance(); err != nil {
			return err
		}
		name := p.tok.Text
		if p.tok.Kind != TokName {
			return p.errorf("expected option name")
		}
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.Kind != TokString {
			return p.errorf("expected option value string")
		}
		m.Options[name] = p.tok.Text
		if err := p.advance(); err != nil {
			return err
		}
		return p.expect(";")
	case p.tok.Is("variable"):
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expect("$"); err != nil {
			return err
		}
		v := &VarDecl{Name: p.tok.Text, Type: SeqType{TypeName: "item()", Occurrence: '*'}}
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.Is("as") {
			if err := p.advance(); err != nil {
				return err
			}
			t, err := p.parseSeqType()
			if err != nil {
				return err
			}
			v.Type = t
		}
		if err := p.expect(":="); err != nil {
			return err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return err
		}
		v.Val = e
		m.Variables = append(m.Variables, v)
		return p.expect(";")
	case p.tok.Is("updating"), p.tok.Is("function"):
		updating := false
		if p.tok.Is("updating") {
			updating = true
			if err := p.advance(); err != nil {
				return err
			}
		}
		if err := p.expect("function"); err != nil {
			return err
		}
		f, err := p.parseFunctionDecl(updating)
		if err != nil {
			return err
		}
		m.Functions = append(m.Functions, f)
		return p.expect(";")
	case p.tok.Is("boundary-space"), p.tok.Is("default"), p.tok.Is("base-uri"),
		p.tok.Is("construction"), p.tok.Is("ordering"), p.tok.Is("copy-namespaces"):
		// recognized-but-ignored setters: skip to ';'
		for !p.tok.Is(";") && p.tok.Kind != TokEOF {
			if err := p.advance(); err != nil {
				return err
			}
		}
		return p.expect(";")
	default:
		return p.errorf("unsupported declaration 'declare %s'", p.tok)
	}
}

func (p *parser) parseImport(m *Module) error {
	if err := p.advance(); err != nil { // consume "import"
		return err
	}
	if !p.tok.Is("module") {
		return p.errorf("only 'import module' is supported, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect("namespace"); err != nil {
		return err
	}
	imp := ModuleImport{Prefix: p.tok.Text}
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expect("="); err != nil {
		return err
	}
	if p.tok.Kind != TokString {
		return p.errorf("expected module URI string")
	}
	imp.URI = p.tok.Text
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.Is("at") {
		if err := p.advance(); err != nil {
			return err
		}
		for {
			if p.tok.Kind != TokString {
				return p.errorf("expected location hint string")
			}
			imp.AtHints = append(imp.AtHints, p.tok.Text)
			if err := p.advance(); err != nil {
				return err
			}
			if ok, err := p.accept(","); err != nil {
				return err
			} else if !ok {
				break
			}
		}
	}
	m.Namespaces[imp.Prefix] = imp.URI
	m.Imports = append(m.Imports, imp)
	return p.expect(";")
}

func (p *parser) parseFunctionDecl(updating bool) (*FuncDecl, error) {
	f := &FuncDecl{Updating: updating, Return: SeqType{TypeName: "item()", Occurrence: '*'}}
	if p.tok.Kind != TokName {
		return nil, p.errorf("expected function name")
	}
	f.Name = p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for !p.tok.Is(")") {
		if err := p.expect("$"); err != nil {
			return nil, err
		}
		prm := Param{Name: p.tok.Text, Type: SeqType{TypeName: "item()", Occurrence: '*'}}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Is("as") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, err := p.parseSeqType()
			if err != nil {
				return nil, err
			}
			prm.Type = t
		}
		f.Params = append(f.Params, prm)
		if ok, err := p.accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.tok.Is("as") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseSeqType()
		if err != nil {
			return nil, err
		}
		f.Return = t
	}
	if p.tok.Is("external") {
		f.External = true
		return f, p.advance()
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	f.Body = body
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseSeqType() (SeqType, error) {
	var t SeqType
	if p.tok.Kind != TokName {
		return t, p.errorf("expected type name, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return t, err
	}
	// kind tests and item() take parentheses
	if p.tok.Is("(") {
		if err := p.advance(); err != nil {
			return t, err
		}
		// allow an optional name inside element(name)/attribute(name)
		if p.tok.Kind == TokName || p.tok.Is("*") {
			if err := p.advance(); err != nil {
				return t, err
			}
		}
		if err := p.expect(")"); err != nil {
			return t, err
		}
		if name == "empty-sequence" {
			t.Empty = true
			return t, nil
		}
		name += "()"
	}
	t.TypeName = name
	t.Occurrence = '1'
	switch {
	case p.tok.Is("?"):
		t.Occurrence = '?'
		return t, p.advance()
	case p.tok.Is("*"):
		t.Occurrence = '*'
		return t, p.advance()
	case p.tok.Is("+"):
		t.Occurrence = '+'
		return t, p.advance()
	}
	return t, nil
}

// ------------------------------------------------------------- expressions

func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if !p.tok.Is(",") {
		return first, nil
	}
	items := []Expr{first}
	for p.tok.Is(",") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SeqExpr{Items: items}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	if p.tok.Kind == TokName {
		switch p.tok.Text {
		case "for", "let":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("$") {
				return p.parseFLWOR()
			}
		case "some", "every":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("$") {
				return p.parseQuantified()
			}
		case "if":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("(") {
				return p.parseIf()
			}
		case "typeswitch":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("(") {
				return p.parseTypeswitch()
			}
		case "insert", "delete", "replace", "rename":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("node") || nt.Is("nodes") || nt.Is("value") {
				return p.parseUpdateExpr()
			}
		case "execute":
			if nt, err := p.peek(); err != nil {
				return nil, err
			} else if nt.Is("at") {
				return p.parseExecuteAt()
			}
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWOR{}
	for p.tok.Is("for") || p.tok.Is("let") {
		isFor := p.tok.Is("for")
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := p.expect("$"); err != nil {
				return nil, err
			}
			name := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if isFor {
				fc := &ForClause{Var: name}
				if p.tok.Is("at") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					if err := p.expect("$"); err != nil {
						return nil, err
					}
					fc.PosVar = p.tok.Text
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
				// optional type annotation, ignored for binding
				if p.tok.Is("as") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					if _, err := p.parseSeqType(); err != nil {
						return nil, err
					}
				}
				if err := p.expect("in"); err != nil {
					return nil, err
				}
				in, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fc.In = in
				fl.Clauses = append(fl.Clauses, fc)
			} else {
				lc := &LetClause{Var: name}
				if p.tok.Is("as") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					if _, err := p.parseSeqType(); err != nil {
						return nil, err
					}
				}
				if err := p.expect(":="); err != nil {
					return nil, err
				}
				val, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				lc.Val = val
				fl.Clauses = append(fl.Clauses, lc)
			}
			if ok, err := p.accept(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if p.tok.Is("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if p.tok.Is("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect("by"); err != nil {
			return nil, err
		}
		for {
			key, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			spec := OrderSpec{Key: key}
			if p.tok.Is("ascending") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.tok.Is("descending") {
				spec.Descending = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			fl.OrderBy = append(fl.OrderBy, spec)
			if ok, err := p.accept(","); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if err := p.expect("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

func (p *parser) parseQuantified() (Expr, error) {
	q := &Quantified{Every: p.tok.Is("every")}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("$"); err != nil {
		return nil, err
	}
	q.Var = p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect("in"); err != nil {
		return nil, err
	}
	in, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.In = in
	if err := p.expect("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = sat
	return q, nil
}

func (p *parser) parseIf() (Expr, error) {
	if err := p.advance(); err != nil { // "if"
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expect("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: then, Else: els}, nil
}

// parseTypeswitch parses
// typeswitch (E) (case [$v as] T return E)+ default [$v] return E.
func (p *parser) parseTypeswitch() (Expr, error) {
	if err := p.advance(); err != nil { // "typeswitch"
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	ts := &Typeswitch{Operand: operand}
	for p.tok.Is("case") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var c TypeswitchCase
		if p.tok.Is("$") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			c.Var = p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("as"); err != nil {
				return nil, err
			}
		}
		typ, err := p.parseSeqType()
		if err != nil {
			return nil, err
		}
		c.Type = typ
		if err := p.expect("return"); err != nil {
			return nil, err
		}
		ret, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		c.Ret = ret
		ts.Cases = append(ts.Cases, c)
	}
	if len(ts.Cases) == 0 {
		return nil, p.errorf("typeswitch requires at least one case")
	}
	if err := p.expect("default"); err != nil {
		return nil, err
	}
	if p.tok.Is("$") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		ts.DefaultVar = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expect("return"); err != nil {
		return nil, err
	}
	def, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	ts.Default = def
	return ts, nil
}

func (p *parser) parseExecuteAt() (Expr, error) {
	if err := p.advance(); err != nil { // "execute"
		return nil, err
	}
	if err := p.expect("at"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	dest, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokName {
		return nil, p.errorf("execute at requires a function call, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	call, err := p.parseCallArgs(name)
	if err != nil {
		return nil, err
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return &ExecuteAt{Dest: dest, Call: call}, nil
}

func (p *parser) parseUpdateExpr() (Expr, error) {
	verb := p.tok.Text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch verb {
	case "insert":
		if !p.tok.Is("node") && !p.tok.Is("nodes") {
			return nil, p.errorf("expected 'node' or 'nodes'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		src, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		pos := InsertInto
		switch {
		case p.tok.Is("into"):
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.Is("as"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch {
			case p.tok.Is("first"):
				pos = InsertAsFirst
			case p.tok.Is("last"):
				pos = InsertAsLast
			default:
				return nil, p.errorf("expected 'first' or 'last'")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("into"); err != nil {
				return nil, err
			}
		case p.tok.Is("before"):
			pos = InsertBefore
			if err := p.advance(); err != nil {
				return nil, err
			}
		case p.tok.Is("after"):
			pos = InsertAfter
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected into/before/after in insert expression")
		}
		tgt, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Insert{Source: src, Pos: pos, Target: tgt}, nil
	case "delete":
		if !p.tok.Is("node") && !p.tok.Is("nodes") {
			return nil, p.errorf("expected 'node' or 'nodes'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		tgt, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Delete{Target: tgt}, nil
	case "replace":
		valueOf := false
		if p.tok.Is("value") {
			valueOf = true
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("of"); err != nil {
				return nil, err
			}
		}
		if err := p.expect("node"); err != nil {
			return nil, err
		}
		tgt, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expect("with"); err != nil {
			return nil, err
		}
		src, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Replace{ValueOf: valueOf, Target: tgt, Source: src}, nil
	case "rename":
		if err := p.expect("node"); err != nil {
			return nil, err
		}
		tgt, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		if err := p.expect("as"); err != nil {
			return nil, err
		}
		name, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		return &Rename{Target: tgt, NewName: name}, nil
	}
	return nil, p.errorf("unknown update expression %q", verb)
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Logic{Op: "and", L: l, R: r}
	}
	return l, nil
}

var valueCompOps = map[string]bool{"eq": true, "ne": true, "lt": true, "le": true, "gt": true, "ge": true}
var generalCompOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseRangeExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.Kind == TokName && valueCompOps[p.tok.Text]:
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRangeExpr()
		if err != nil {
			return nil, err
		}
		return &Comparison{Op: op, L: l, R: r}, nil
	case p.tok.Kind == TokSymbol && generalCompOps[p.tok.Text]:
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRangeExpr()
		if err != nil {
			return nil, err
		}
		return &Comparison{Op: op, General: true, L: l, R: r}, nil
	case p.tok.Is("is"), p.tok.Is("<<"), p.tok.Is(">>"):
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseRangeExpr()
		if err != nil {
			return nil, err
		}
		return &Comparison{Op: op, Node: true, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseRangeExpr() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.tok.Is("to") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &RangeExpr{Lo: l, Hi: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("+") || p.tok.Is("-") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("*") || p.tok.Is("div") || p.tok.Is("idiv") || p.tok.Is("mod") {
		op := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = &Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnion() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Is("|") || p.tok.Is("union") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &UnionExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	neg := false
	for p.tok.Is("-") || p.tok.Is("+") {
		if p.tok.Is("-") {
			neg = !neg
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	e, err := p.parseCastable()
	if err != nil {
		return nil, err
	}
	if neg {
		return &Unary{Neg: true, X: e}, nil
	}
	return e, nil
}

func (p *parser) parseCastable() (Expr, error) {
	e, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.tok.Is("cast"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("as"); err != nil {
				return nil, err
			}
			t := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Is("?") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			e = &Cast{X: e, Type: t}
		case p.tok.Is("castable"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("as"); err != nil {
				return nil, err
			}
			t := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Is("?") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			e = &Castable{X: e, Type: t}
		case p.tok.Is("instance"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect("of"); err != nil {
				return nil, err
			}
			t, err := p.parseSeqType()
			if err != nil {
				return nil, err
			}
			e = &InstanceOf{X: e, Type: t}
		default:
			return e, nil
		}
	}
}

// ------------------------------------------------------------------ paths

var kindTestNames = map[string]xdm.NodeKind{
	"text":                   xdm.TextNode,
	"comment":                xdm.CommentNode,
	"processing-instruction": xdm.PINode,
	"document-node":          xdm.DocumentNode,
	"element":                xdm.ElementNode,
	"attribute":              xdm.AttributeNode,
}

var axisNames = map[string]xdm.Axis{
	"child":              xdm.AxisChild,
	"descendant":         xdm.AxisDescendant,
	"descendant-or-self": xdm.AxisDescendantOrSelf,
	"attribute":          xdm.AxisAttribute,
	"self":               xdm.AxisSelf,
	"parent":             xdm.AxisParent,
	"ancestor":           xdm.AxisAncestor,
	"ancestor-or-self":   xdm.AxisAncestorOrSelf,
	"following-sibling":  xdm.AxisFollowingSibling,
	"preceding-sibling":  xdm.AxisPrecedingSibling,
	"following":          xdm.AxisFollowing,
	"preceding":          xdm.AxisPreceding,
}

func (p *parser) parsePathExpr() (Expr, error) {
	path := &Path{}
	switch {
	case p.tok.Is("//"):
		path.FromRoot = true
		path.DescRoot = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, Step{
			Axis: xdm.AxisDescendantOrSelf,
			Test: xdm.NodeTest{KindTest: true, AnyKind: true},
		})
	case p.tok.Is("/"):
		path.FromRoot = true
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.startsStep() && !p.startsPrimary() {
			return path, nil // lone "/"
		}
	}
	if err := p.parseRelativePath(path); err != nil {
		return nil, err
	}
	// collapse trivial paths to the bare primary
	if !path.FromRoot && path.Root != nil && len(path.Steps) == 0 && len(path.RootPreds) == 0 {
		return path.Root, nil
	}
	fuseDescendantSteps(path)
	return path, nil
}

// fuseDescendantSteps rewrites descendant-or-self::node()/child::X into
// descendant::X — the standard // optimization. It is only applied when
// the child step's predicates cannot observe the difference: they must
// be boolean-valued (a numeric predicate selects by position, which is
// per-parent for child::X but global for descendant::X) and must not
// call position() or last().
func fuseDescendantSteps(p *Path) {
	out := p.Steps[:0]
	for i := 0; i < len(p.Steps); i++ {
		st := p.Steps[i]
		if i+1 < len(p.Steps) &&
			st.Axis == xdm.AxisDescendantOrSelf && st.Test.KindTest && st.Test.AnyKind && len(st.Preds) == 0 {
			next := p.Steps[i+1]
			if next.Axis == xdm.AxisChild && fusablePreds(next.Preds) {
				out = append(out, Step{Axis: xdm.AxisDescendant, Test: next.Test, Preds: next.Preds})
				i++
				continue
			}
		}
		out = append(out, st)
	}
	p.Steps = out
}

func fusablePreds(preds []Expr) bool {
	for _, pr := range preds {
		if !boolValued(pr) || usesPosition(pr) {
			return false
		}
	}
	return true
}

// boolValued reports whether the expression always evaluates to a
// boolean (so it cannot act as a positional predicate).
func boolValued(e Expr) bool {
	switch n := e.(type) {
	case *Comparison, *Logic, *Quantified:
		return true
	case *FuncCall:
		switch n.Name {
		case "exists", "empty", "not", "boolean", "contains",
			"starts-with", "ends-with", "true", "false", "deep-equal",
			"fn:exists", "fn:empty", "fn:not", "fn:boolean", "fn:contains",
			"fn:starts-with", "fn:ends-with", "fn:true", "fn:false", "fn:deep-equal":
			return true
		}
	case *Castable, *InstanceOf:
		return true
	}
	return false
}

// usesPosition reports whether the expression may consult position() or
// last().
func usesPosition(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *FuncCall:
		switch n.Name {
		case "position", "last", "fn:position", "fn:last":
			return true
		}
		for _, a := range n.Args {
			if usesPosition(a) {
				return true
			}
		}
	case *Comparison:
		return usesPosition(n.L) || usesPosition(n.R)
	case *Logic:
		return usesPosition(n.L) || usesPosition(n.R)
	case *Arith:
		return usesPosition(n.L) || usesPosition(n.R)
	case *Unary:
		return usesPosition(n.X)
	case *SeqExpr:
		for _, it := range n.Items {
			if usesPosition(it) {
				return true
			}
		}
	case *Path:
		if usesPosition(n.Root) {
			return true
		}
		for _, pr := range n.RootPreds {
			if usesPosition(pr) {
				return true
			}
		}
		for _, st := range n.Steps {
			for _, pr := range st.Preds {
				if usesPosition(pr) {
					return true
				}
			}
		}
	case *Quantified:
		return usesPosition(n.In) || usesPosition(n.Satisfies)
	case *FLWOR:
		for _, cl := range n.Clauses {
			switch c := cl.(type) {
			case *ForClause:
				if usesPosition(c.In) {
					return true
				}
			case *LetClause:
				if usesPosition(c.Val) {
					return true
				}
			}
		}
		return usesPosition(n.Where) || usesPosition(n.Return)
	}
	return false
}

// startsStep reports whether the current token can begin an axis step.
func (p *parser) startsStep() bool {
	switch {
	case p.tok.Is("@"), p.tok.Is(".."), p.tok.Is("*"):
		return true
	case p.tok.Kind == TokName:
		if reservedExprName(p.tok.Text) {
			return false
		}
		return true
	}
	return false
}

func (p *parser) startsPrimary() bool {
	switch p.tok.Kind {
	case TokString, TokInteger, TokDecimal, TokDouble:
		return true
	case TokSymbol:
		return p.tok.Is("$") || p.tok.Is("(") || p.tok.Is(".") || p.tok.Is("<")
	case TokName:
		return true
	}
	return false
}

// reservedExprName lists names that begin non-path expressions and thus
// cannot start a step.
func reservedExprName(s string) bool {
	switch s {
	case "return", "then", "else", "and", "or", "to", "in", "satisfies",
		"where", "order", "by", "at", "as", "is", "div", "idiv", "mod",
		"eq", "ne", "lt", "le", "gt", "ge", "with", "into", "cast",
		"castable", "instance", "union", "ascending", "descending":
		return true
	}
	return false
}

func (p *parser) parseRelativePath(path *Path) error {
	if err := p.parseStepInto(path, true); err != nil {
		return err
	}
	for {
		switch {
		case p.tok.Is("//"):
			if err := p.advance(); err != nil {
				return err
			}
			path.Steps = append(path.Steps, Step{
				Axis: xdm.AxisDescendantOrSelf,
				Test: xdm.NodeTest{KindTest: true, AnyKind: true},
			})
			if err := p.parseStepInto(path, false); err != nil {
				return err
			}
		case p.tok.Is("/"):
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.parseStepInto(path, false); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// parseStepInto parses one step. When first is true and the step is a
// primary expression (not an axis step), it becomes the path root.
func (p *parser) parseStepInto(path *Path, first bool) error {
	// axis step forms
	switch {
	case p.tok.Is(".."):
		if err := p.advance(); err != nil {
			return err
		}
		st := Step{Axis: xdm.AxisParent, Test: xdm.NodeTest{KindTest: true, AnyKind: true}}
		return p.parsePredicatesInto(&st, path)
	case p.tok.Is("@"):
		if err := p.advance(); err != nil {
			return err
		}
		test, err := p.parseNodeTest(xdm.AxisAttribute)
		if err != nil {
			return err
		}
		st := Step{Axis: xdm.AxisAttribute, Test: test}
		return p.parsePredicatesInto(&st, path)
	case p.tok.Is("*"):
		if err := p.advance(); err != nil {
			return err
		}
		st := Step{Axis: xdm.AxisChild, Test: xdm.NodeTest{Name: "*"}}
		return p.parsePredicatesInto(&st, path)
	}
	if p.tok.Kind == TokName {
		nt, err := p.peek()
		if err != nil {
			return err
		}
		// explicit axis
		if nt.Is("::") {
			axis, ok := axisNames[p.tok.Text]
			if !ok {
				return p.errorf("unknown axis %q", p.tok.Text)
			}
			if err := p.advance(); err != nil {
				return err
			}
			if err := p.advance(); err != nil { // "::"
				return err
			}
			test, err := p.parseNodeTest(axis)
			if err != nil {
				return err
			}
			st := Step{Axis: axis, Test: test}
			return p.parsePredicatesInto(&st, path)
		}
		// computed constructors are primaries, not name-test steps
		if nt.Is("{") && (p.tok.Text == "element" || p.tok.Text == "attribute" || p.tok.Text == "text") {
			goto primary
		}
		// kind test as a step: text(), node(), comment() ...
		if nt.Is("(") {
			if _, isKind := kindTestNames[p.tok.Text]; isKind || p.tok.Text == "node" {
				test, err := p.parseNodeTest(xdm.AxisChild)
				if err != nil {
					return err
				}
				st := Step{Axis: xdm.AxisChild, Test: test}
				return p.parsePredicatesInto(&st, path)
			}
			// else: function call → primary
		} else if !reservedExprName(p.tok.Text) {
			// plain name test step
			name := p.tok.Text
			if err := p.advance(); err != nil {
				return err
			}
			st := Step{Axis: xdm.AxisChild, Test: xdm.NodeTest{Name: name}}
			return p.parsePredicatesInto(&st, path)
		}
	}
primary:
	// primary expression step
	if !first {
		// primaries are only allowed as the first step in this subset
		return p.errorf("expected a path step, found %s", p.tok)
	}
	prim, err := p.parsePrimary()
	if err != nil {
		return err
	}
	path.Root = prim
	for p.tok.Is("[") {
		if err := p.advance(); err != nil {
			return err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expect("]"); err != nil {
			return err
		}
		path.RootPreds = append(path.RootPreds, pred)
	}
	return nil
}

func (p *parser) parsePredicatesInto(st *Step, path *Path) error {
	for p.tok.Is("[") {
		if err := p.advance(); err != nil {
			return err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return err
		}
		if err := p.expect("]"); err != nil {
			return err
		}
		st.Preds = append(st.Preds, pred)
	}
	path.Steps = append(path.Steps, *st)
	return nil
}

func (p *parser) parseNodeTest(axis xdm.Axis) (xdm.NodeTest, error) {
	if p.tok.Is("*") {
		if err := p.advance(); err != nil {
			return xdm.NodeTest{}, err
		}
		return xdm.NodeTest{Name: "*"}, nil
	}
	if p.tok.Kind != TokName {
		return xdm.NodeTest{}, p.errorf("expected node test, found %s", p.tok)
	}
	name := p.tok.Text
	nt, err := p.peek()
	if err != nil {
		return xdm.NodeTest{}, err
	}
	if nt.Is("(") {
		if err := p.advance(); err != nil { // name
			return xdm.NodeTest{}, err
		}
		if err := p.advance(); err != nil { // "("
			return xdm.NodeTest{}, err
		}
		// optional inner name (element(x)) or PI target — accepted, ignored
		if p.tok.Kind == TokName || p.tok.Kind == TokString || p.tok.Is("*") {
			if err := p.advance(); err != nil {
				return xdm.NodeTest{}, err
			}
		}
		if err := p.expect(")"); err != nil {
			return xdm.NodeTest{}, err
		}
		if name == "node" {
			return xdm.NodeTest{KindTest: true, AnyKind: true}, nil
		}
		kind, ok := kindTestNames[name]
		if !ok {
			return xdm.NodeTest{}, p.errorf("unknown kind test %q", name)
		}
		return xdm.NodeTest{KindTest: true, Kind: kind}, nil
	}
	if err := p.advance(); err != nil {
		return xdm.NodeTest{}, err
	}
	return xdm.NodeTest{Name: name}, nil
}

// -------------------------------------------------------------- primaries

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokString:
		v := p.tok.Text
		return &StringLit{Val: v}, p.advance()
	case TokInteger:
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", p.tok.Text)
		}
		return &IntLit{Val: n}, p.advance()
	case TokDecimal:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad decimal literal %q", p.tok.Text)
		}
		return &DecimalLit{Val: f}, p.advance()
	case TokDouble:
		f, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errorf("bad double literal %q", p.tok.Text)
		}
		return &DoubleLit{Val: f}, p.advance()
	}
	switch {
	case p.tok.Is("$"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Kind != TokName {
			return nil, p.errorf("expected variable name after $")
		}
		name := p.tok.Text
		return &VarRef{Name: name}, p.advance()
	case p.tok.Is("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Is(")") {
			return &EmptySeq{}, p.advance()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case p.tok.Is("."):
		return &ContextItem{}, p.advance()
	case p.tok.Is("<"):
		return p.parseDirectConstructor()
	}
	if p.tok.Kind == TokName {
		name := p.tok.Text
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		// computed constructors
		if (name == "element" || name == "attribute" || name == "text") && nt.Is("{") {
			return p.parseComputedConstructor(name)
		}
		if nt.Is("(") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return p.parseCallArgs(name)
		}
	}
	return nil, p.errorf("unexpected %s in expression", p.tok)
}

// parseCallArgs parses "( args )" for a function whose name token was
// already consumed.
func (p *parser) parseCallArgs(name string) (*FuncCall, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: name}
	for !p.tok.Is(")") {
		a, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, a)
		if ok, err := p.accept(","); err != nil {
			return nil, err
		} else if !ok {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *parser) parseComputedConstructor(kind string) (Expr, error) {
	if err := p.advance(); err != nil { // consume keyword
		return nil, err
	}
	if kind == "text" {
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return &CompText{Val: v}, nil
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	name, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var content Expr = &EmptySeq{}
	if !p.tok.Is("}") {
		content, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	if kind == "attribute" {
		return &CompAttr{Name: name, Value: content}, nil
	}
	return &CompElem{Name: name, Content: content}, nil
}

// ------------------------------------------------ direct constructors

// parseDirectConstructor parses <name attr="v">content</name> reading raw
// characters from the source, starting at the current "<" token.
func (p *parser) parseDirectConstructor() (Expr, error) {
	// rewind the lexer to the raw '<'
	p.lex.pos = p.tok.Pos
	p.peeked = nil
	el, err := p.parseDirElemRaw()
	if err != nil {
		return nil, err
	}
	// resume token mode
	if err := p.advance(); err != nil {
		return nil, err
	}
	return el, nil
}

func (p *parser) parseDirElemRaw() (*DirElem, error) {
	l := p.lex
	if l.src[l.pos] != '<' {
		return nil, l.errorf(l.pos, "expected '<'")
	}
	l.pos++
	name := p.scanRawName()
	if name == "" {
		return nil, l.errorf(l.pos, "expected element name")
	}
	el := &DirElem{Name: name}
	for {
		p.skipRawSpace()
		if l.pos >= len(l.src) {
			return nil, l.errorf(l.pos, "unterminated start tag <%s", name)
		}
		if strings.HasPrefix(l.src[l.pos:], "/>") {
			l.pos += 2
			return el, nil
		}
		if l.src[l.pos] == '>' {
			l.pos++
			break
		}
		attr, err := p.parseDirAttrRaw()
		if err != nil {
			return nil, err
		}
		el.Attrs = append(el.Attrs, *attr)
	}
	// content
	var text strings.Builder
	flushText := func() {
		if text.Len() > 0 {
			// default XQuery boundary-space policy is "strip":
			// whitespace-only literal text between tags/enclosed
			// expressions is discarded.
			if strings.TrimSpace(text.String()) != "" {
				el.Content = append(el.Content, &StringLit{Val: text.String()})
			}
			text.Reset()
		}
	}
	for {
		if l.pos >= len(l.src) {
			return nil, l.errorf(l.pos, "unterminated element <%s>", name)
		}
		c := l.src[l.pos]
		switch {
		case strings.HasPrefix(l.src[l.pos:], "</"):
			flushText()
			l.pos += 2
			end := p.scanRawName()
			if end != name {
				return nil, l.errorf(l.pos, "mismatched end tag </%s>, expected </%s>", end, name)
			}
			p.skipRawSpace()
			if l.pos >= len(l.src) || l.src[l.pos] != '>' {
				return nil, l.errorf(l.pos, "expected '>' in end tag")
			}
			l.pos++
			return el, nil
		case strings.HasPrefix(l.src[l.pos:], "<!--"):
			flushText()
			end := strings.Index(l.src[l.pos+4:], "-->")
			if end < 0 {
				return nil, l.errorf(l.pos, "unterminated comment")
			}
			el.Content = append(el.Content, &CompText{Val: &StringLit{Val: ""}}) // placeholder replaced below
			el.Content[len(el.Content)-1] = &commentLit{Val: l.src[l.pos+4 : l.pos+4+end]}
			l.pos += 4 + end + 3
		case c == '<':
			flushText()
			child, err := p.parseDirElemRaw()
			if err != nil {
				return nil, err
			}
			el.Content = append(el.Content, child)
		case c == '{':
			if strings.HasPrefix(l.src[l.pos:], "{{") {
				text.WriteByte('{')
				l.pos += 2
				continue
			}
			flushText()
			l.pos++
			// switch to token mode for the enclosed expression
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.tok.Is("}") {
				return nil, p.errorf("expected '}' to close enclosed expression")
			}
			// resume raw mode right after '}'
			l.pos = p.tok.End
			p.peeked = nil
			el.Content = append(el.Content, &Enclosed{X: e})
		case c == '}':
			if strings.HasPrefix(l.src[l.pos:], "}}") {
				text.WriteByte('}')
				l.pos += 2
				continue
			}
			return nil, l.errorf(l.pos, "unescaped '}' in element content")
		case c == '&':
			ent, n, err := scanEntity(l.src[l.pos:])
			if err != nil {
				return nil, l.errorf(l.pos, "%v", err)
			}
			text.WriteString(ent)
			l.pos += n
		default:
			text.WriteByte(c)
			l.pos++
		}
	}
}

// commentLit is a direct comment constructor inside element content.
type commentLit struct{ Val string }

func (*commentLit) exprNode() {}

// CommentValue exposes the comment text for the evaluator.
func (c *commentLit) CommentValue() string { return c.Val }

// DirComment is the exported view of a direct comment constructor.
type DirComment = commentLit

func (p *parser) parseDirAttrRaw() (*DirAttr, error) {
	l := p.lex
	name := p.scanRawName()
	if name == "" {
		return nil, l.errorf(l.pos, "expected attribute name")
	}
	p.skipRawSpace()
	if l.pos >= len(l.src) || l.src[l.pos] != '=' {
		return nil, l.errorf(l.pos, "expected '=' after attribute name")
	}
	l.pos++
	p.skipRawSpace()
	if l.pos >= len(l.src) || (l.src[l.pos] != '"' && l.src[l.pos] != '\'') {
		return nil, l.errorf(l.pos, "expected quoted attribute value")
	}
	quote := l.src[l.pos]
	l.pos++
	attr := &DirAttr{Name: name}
	var text strings.Builder
	flush := func() {
		if text.Len() > 0 {
			attr.Value = append(attr.Value, &StringLit{Val: text.String()})
			text.Reset()
		}
	}
	for {
		if l.pos >= len(l.src) {
			return nil, l.errorf(l.pos, "unterminated attribute value")
		}
		c := l.src[l.pos]
		switch {
		case c == quote:
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				text.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			flush()
			return attr, nil
		case c == '{':
			if strings.HasPrefix(l.src[l.pos:], "{{") {
				text.WriteByte('{')
				l.pos += 2
				continue
			}
			flush()
			l.pos++
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if !p.tok.Is("}") {
				return nil, p.errorf("expected '}' in attribute value template")
			}
			l.pos = p.tok.End
			p.peeked = nil
			attr.Value = append(attr.Value, &Enclosed{X: e})
		case c == '}':
			if strings.HasPrefix(l.src[l.pos:], "}}") {
				text.WriteByte('}')
				l.pos += 2
				continue
			}
			return nil, l.errorf(l.pos, "unescaped '}' in attribute value")
		case c == '&':
			ent, n, err := scanEntity(l.src[l.pos:])
			if err != nil {
				return nil, l.errorf(l.pos, "%v", err)
			}
			text.WriteString(ent)
			l.pos += n
		default:
			text.WriteByte(c)
			l.pos++
		}
	}
}

func (p *parser) scanRawName() string {
	l := p.lex
	start := l.pos
	for l.pos < len(l.src) && (isNameChar(l.src[l.pos]) || l.src[l.pos] == ':') {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (p *parser) skipRawSpace() {
	l := p.lex
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

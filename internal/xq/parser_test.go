package xq

import (
	"strings"
	"testing"

	"xrpc/internal/xdm"
)

func mustParse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v\nquery: %s", err, src)
	}
	return m
}

func mustParseExpr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr: %v\nexpr: %s", err, src)
	}
	return e
}

// The paper's running example Q1.
func TestParseQ1(t *testing.T) {
	m := mustParse(t, `
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  execute at {"xrpc://y.example.org"}
  {f:filmsByActor("Sean Connery")}
} </films>`)
	if len(m.Imports) != 1 || m.Imports[0].URI != "films" {
		t.Fatalf("imports = %+v", m.Imports)
	}
	if m.Imports[0].AtHints[0] != "http://x.example.org/film.xq" {
		t.Fatalf("at hint = %v", m.Imports[0].AtHints)
	}
	el, ok := m.Body.(*DirElem)
	if !ok {
		t.Fatalf("body = %T, want DirElem", m.Body)
	}
	if el.Name != "films" {
		t.Fatalf("element name = %q", el.Name)
	}
	var exec *ExecuteAt
	for _, c := range el.Content {
		if enc, ok := c.(*Enclosed); ok {
			exec, _ = enc.X.(*ExecuteAt)
		}
	}
	if exec == nil {
		t.Fatal("no ExecuteAt found in element content")
	}
	if exec.Call.Name != "f:filmsByActor" || len(exec.Call.Args) != 1 {
		t.Fatalf("call = %+v", exec.Call)
	}
}

// Q2: execute at inside a for-loop with let-bound destination.
func TestParseQ2(t *testing.T) {
	m := mustParse(t, `
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>`)
	el := m.Body.(*DirElem)
	var fl *FLWOR
	for _, c := range el.Content {
		if e, isEnc := c.(*Enclosed); isEnc {
			fl, _ = e.X.(*FLWOR)
			if fl != nil {
				break
			}
		}
	}
	if fl == nil || len(fl.Clauses) != 2 {
		t.Fatalf("FLWOR clauses = %+v", fl)
	}
	if _, ok := fl.Clauses[0].(*ForClause); !ok {
		t.Fatalf("clause 0 = %T", fl.Clauses[0])
	}
	if _, ok := fl.Clauses[1].(*LetClause); !ok {
		t.Fatalf("clause 1 = %T", fl.Clauses[1])
	}
	if _, ok := fl.Return.(*ExecuteAt); !ok {
		t.Fatalf("return = %T", fl.Return)
	}
}

// Q7: two-document join, the §5 experiment query.
func TestParseQ7(t *testing.T) {
	m := mustParse(t, `
for $p in doc("persons.xml")//person,
    $ca in doc("xrpc://B/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{$p,$ca/annotation}</result>`)
	fl := m.Body.(*FLWOR)
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	fc := fl.Clauses[0].(*ForClause)
	path := fc.In.(*Path)
	if _, ok := path.Root.(*FuncCall); !ok {
		t.Fatalf("for-in root = %T", path.Root)
	}
	if len(path.Steps) != 1 { // fused descendant::person
		t.Fatalf("steps = %d", len(path.Steps))
	}
	if fl.Where == nil {
		t.Fatal("missing where")
	}
	cmp := fl.Where.(*Comparison)
	if !cmp.General || cmp.Op != "=" {
		t.Fatalf("where op = %+v", cmp)
	}
}

func TestParseLibraryModule(t *testing.T) {
	m := mustParse(t, `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`)
	if !m.IsLibrary || m.ModuleURI != "films" || m.ModulePrefix != "film" {
		t.Fatalf("module = %+v", m)
	}
	f := m.Function("film:filmsByActor", 1)
	if f == nil {
		t.Fatal("function not found")
	}
	if f.Params[0].Type.TypeName != "xs:string" || f.Params[0].Type.Occurrence != '1' {
		t.Fatalf("param type = %+v", f.Params[0].Type)
	}
	if f.Return.TypeName != "node()" || f.Return.Occurrence != '*' {
		t.Fatalf("return type = %+v", f.Return)
	}
}

func TestParseUpdatingFunction(t *testing.T) {
	m := mustParse(t, `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string)
{ insert node <film><name>{$name}</name></film> into doc("filmDB.xml")/films };`)
	f := m.Function("u:addFilm", 1)
	if f == nil || !f.Updating {
		t.Fatalf("updating function = %+v", f)
	}
	ins, ok := f.Body.(*Insert)
	if !ok {
		t.Fatalf("body = %T", f.Body)
	}
	if ins.Pos != InsertInto {
		t.Fatalf("insert pos = %v", ins.Pos)
	}
}

func TestParseUpdateForms(t *testing.T) {
	cases := []string{
		`insert node <a/> as first into doc("d")/r`,
		`insert node <a/> as last into doc("d")/r`,
		`insert node <a/> before doc("d")/r/x`,
		`insert node <a/> after doc("d")/r/x`,
		`insert nodes ($n1, $n2) into doc("d")/r`,
		`delete node doc("d")/r/x`,
		`delete nodes doc("d")//x`,
		`replace node doc("d")/r/x with <y/>`,
		`replace value of node doc("d")/r/x with "v"`,
		`rename node doc("d")/r/x as "y"`,
	}
	for _, src := range cases {
		if _, err := ParseExpr(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestParseDeclareOption(t *testing.T) {
	m := mustParse(t, `
declare option xrpc:isolation "repeatable";
declare option xrpc:timeout "30";
1`)
	if m.Options["xrpc:isolation"] != "repeatable" {
		t.Fatalf("options = %v", m.Options)
	}
	if m.Options["xrpc:timeout"] != "30" {
		t.Fatalf("options = %v", m.Options)
	}
}

func TestParsePrecedence(t *testing.T) {
	e := mustParseExpr(t, `1 + 2 * 3`)
	a := e.(*Arith)
	if a.Op != "+" {
		t.Fatalf("top op = %s", a.Op)
	}
	if r := a.R.(*Arith); r.Op != "*" {
		t.Fatalf("right op = %s", r.Op)
	}
	e = mustParseExpr(t, `1 < 2 and 3 = 3 or false()`)
	lg := e.(*Logic)
	if lg.Op != "or" {
		t.Fatalf("top = %s", lg.Op)
	}
}

func TestParseRangeAndQuantified(t *testing.T) {
	e := mustParseExpr(t, `for $i in (1 to $x) return $i`)
	fl := e.(*FLWOR)
	if _, ok := fl.Clauses[0].(*ForClause).In.(*RangeExpr); !ok {
		t.Fatalf("in = %T", fl.Clauses[0].(*ForClause).In)
	}
	e = mustParseExpr(t, `some $x in (1,2,3) satisfies $x gt 2`)
	q := e.(*Quantified)
	if q.Every || q.Var != "x" {
		t.Fatalf("quantified = %+v", q)
	}
}

func TestParsePathForms(t *testing.T) {
	cases := map[string]int{ // expr -> number of steps
		`/films`:                      1,
		`//film`:                      1, // fused descendant::film
		`doc("f")//name[../actor=$a]`: 1, // fused (boolean predicate)
		`$p/@id`:                      1,
		`$ca/buyer/@person`:           2,
		`.//name`:                     1,
		`$d/..`:                       1,
		`child::film/attribute::id`:   2,
		`$x/descendant-or-self::node()/self::film`: 2,
		`$x/text()`: 1,
	}
	for src, steps := range cases {
		e := mustParseExpr(t, src)
		p, ok := e.(*Path)
		if !ok {
			t.Errorf("%s: got %T, want *Path", src, e)
			continue
		}
		if len(p.Steps) != steps {
			t.Errorf("%s: %d steps, want %d", src, len(p.Steps), steps)
		}
	}
}

func TestParsePredicates(t *testing.T) {
	e := mustParseExpr(t, `//person[@id=$pid][2]`)
	p := e.(*Path)
	last := p.Steps[len(p.Steps)-1]
	if len(last.Preds) != 2 {
		t.Fatalf("predicates = %d", len(last.Preds))
	}
	if _, ok := last.Preds[1].(*IntLit); !ok {
		t.Fatalf("positional predicate = %T", last.Preds[1])
	}
}

func TestParseDirectConstructorText(t *testing.T) {
	e := mustParseExpr(t, `<a x="1" y="{1+1}">hi {2+3} bye &amp; &lt;</a>`)
	el := e.(*DirElem)
	if len(el.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(el.Attrs))
	}
	if el.Attrs[0].Value[0].(*StringLit).Val != "1" {
		t.Fatalf("attr 0 = %+v", el.Attrs[0])
	}
	if _, ok := el.Attrs[1].Value[0].(*Enclosed); !ok {
		t.Fatalf("attr 1 = %+v", el.Attrs[1])
	}
	if len(el.Content) != 3 {
		t.Fatalf("content = %d items: %#v", len(el.Content), el.Content)
	}
	if el.Content[0].(*StringLit).Val != "hi " {
		t.Fatalf("text 0 = %q", el.Content[0].(*StringLit).Val)
	}
	if el.Content[2].(*StringLit).Val != " bye & <" {
		t.Fatalf("text 2 = %q", el.Content[2].(*StringLit).Val)
	}
}

func TestParseNestedConstructor(t *testing.T) {
	e := mustParseExpr(t, `<r><a>{$x}</a><b/></r>`)
	el := e.(*DirElem)
	if len(el.Content) != 2 {
		t.Fatalf("content = %d", len(el.Content))
	}
	a := el.Content[0].(*DirElem)
	if a.Name != "a" || len(a.Content) != 1 {
		t.Fatalf("a = %+v", a)
	}
	b := el.Content[1].(*DirElem)
	if b.Name != "b" || len(b.Content) != 0 {
		t.Fatalf("b = %+v", b)
	}
}

func TestParseCurlyEscapes(t *testing.T) {
	e := mustParseExpr(t, `<a>{{literal}}</a>`)
	el := e.(*DirElem)
	if len(el.Content) != 1 || el.Content[0].(*StringLit).Val != "{literal}" {
		t.Fatalf("content = %#v", el.Content)
	}
}

func TestParseComments(t *testing.T) {
	e := mustParseExpr(t, `(: outer (: nested :) comment :) 1 + (: x :) 2`)
	if _, ok := e.(*Arith); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := mustParseExpr(t, `"say ""hi"" &amp; bye"`)
	s := e.(*StringLit)
	if s.Val != `say "hi" & bye` {
		t.Fatalf("string = %q", s.Val)
	}
	e = mustParseExpr(t, `'it''s'`)
	if e.(*StringLit).Val != "it's" {
		t.Fatalf("string = %q", e.(*StringLit).Val)
	}
}

func TestParseComputedConstructors(t *testing.T) {
	e := mustParseExpr(t, `element {"foo"} {1, 2}`)
	ce := e.(*CompElem)
	if _, ok := ce.Content.(*SeqExpr); !ok {
		t.Fatalf("content = %T", ce.Content)
	}
	e = mustParseExpr(t, `text {"hello"}`)
	if _, ok := e.(*CompText); !ok {
		t.Fatalf("got %T", e)
	}
	e = mustParseExpr(t, `attribute {"id"} {"x1"}`)
	if _, ok := e.(*CompAttr); !ok {
		t.Fatalf("got %T", e)
	}
}

func TestParseCastInstance(t *testing.T) {
	e := mustParseExpr(t, `"42" cast as xs:integer`)
	if c := e.(*Cast); c.Type != "xs:integer" {
		t.Fatalf("cast = %+v", c)
	}
	e = mustParseExpr(t, `$x instance of xs:string+`)
	io := e.(*InstanceOf)
	if io.Type.TypeName != "xs:string" || io.Type.Occurrence != '+' {
		t.Fatalf("instance of = %+v", io.Type)
	}
}

func TestParseNodeComparisons(t *testing.T) {
	for _, src := range []string{`$a is $b`, `$a << $b`, `$a >> $b`} {
		e := mustParseExpr(t, src)
		c, ok := e.(*Comparison)
		if !ok || !c.Node {
			t.Errorf("%s: got %#v", src, e)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x in`,
		`<a><b></a>`,
		`execute at {"x"} {1+1}`,
		`"unterminated`,
		`declare bogus thing; 1`,
		`1 +`,
		`<a>{1</a>`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error", src)
		}
	}
}

func TestParseErrorPosition(t *testing.T) {
	_, err := Parse("1 +\n  &")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
}

func TestParseEchoVoidBench(t *testing.T) {
	// The Table 2 experiment query.
	m := mustParse(t, `
import module namespace t="test" at "http://x.example.org/test.xq";
for $i in (1 to $x)
return execute at {"xrpc://y.example.org"} {t:echoVoid()}`)
	fl := m.Body.(*FLWOR)
	ex := fl.Return.(*ExecuteAt)
	if ex.Call.Name != "t:echoVoid" || len(ex.Call.Args) != 0 {
		t.Fatalf("call = %+v", ex.Call)
	}
}

func TestParseSemiJoinModule(t *testing.T) {
	// The §5 distributed semi-join module function.
	m := mustParse(t, `
module namespace b = "functions_b";
declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person=$pid] };`)
	f := m.Function("b:Q_B3", 1)
	if f == nil {
		t.Fatal("function missing")
	}
	path := f.Body.(*Path)
	last := path.Steps[len(path.Steps)-1]
	if len(last.Preds) != 1 {
		t.Fatalf("preds = %d", len(last.Preds))
	}
	// predicate is ./buyer/@person=$pid
	cmp := last.Preds[0].(*Comparison)
	if !cmp.General {
		t.Fatal("predicate comparison should be general")
	}
	lp := cmp.L.(*Path)
	if len(lp.Steps) != 2 {
		t.Fatalf("predicate path steps = %d", len(lp.Steps))
	}
	if lp.Steps[1].Axis != xdm.AxisAttribute {
		t.Fatalf("axis = %v", lp.Steps[1].Axis)
	}
}

func TestParseOrderBy(t *testing.T) {
	e := mustParseExpr(t, `for $x in (3,1,2) order by $x descending return $x`)
	fl := e.(*FLWOR)
	if len(fl.OrderBy) != 1 || !fl.OrderBy[0].Descending {
		t.Fatalf("order by = %+v", fl.OrderBy)
	}
}

func TestParsePositionalVar(t *testing.T) {
	e := mustParseExpr(t, `for $x at $i in ("a","b") return $i`)
	fc := e.(*FLWOR).Clauses[0].(*ForClause)
	if fc.PosVar != "i" {
		t.Fatalf("pos var = %q", fc.PosVar)
	}
}

func TestSeqTypeString(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"xs:string", "xs:string"},
		{"node()*", "node()*"},
		{"item()?", "item()?"},
		{"xs:integer+", "xs:integer+"},
		{"empty-sequence()", "empty-sequence()"},
	}
	for _, c := range cases {
		p := &parser{lex: &lexer{src: c.src}}
		if err := p.advance(); err != nil {
			t.Fatal(err)
		}
		st, err := p.parseSeqType()
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if st.String() != c.want {
			t.Errorf("%s: got %q", c.src, st.String())
		}
	}
}

func TestParseWrapperGeneratedQueryShape(t *testing.T) {
	// Shape of the Figure 3 generated query (the wrapper emits this).
	src := `
import module namespace func = "functions" at "http://example.org/functions.xq";
declare namespace env = "http://www.w3.org/2003/05/soap-envelope";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";
<env:Envelope>
<env:Body>
<xrpc:response>{
  for $call in doc("/tmp/request.xml")//xrpc:call
  let $param1 := $call/xrpc:sequence[1]
  let $param2 := $call/xrpc:sequence[2]
  return func:getPerson(string($param1), string($param2))
}</xrpc:response>
</env:Body>
</env:Envelope>`
	m := mustParse(t, src)
	if m.Namespaces["env"] != "http://www.w3.org/2003/05/soap-envelope" {
		t.Fatalf("namespaces = %v", m.Namespaces)
	}
	if !strings.Contains(src, "xrpc:response") {
		t.Fatal("sanity")
	}
	el := m.Body.(*DirElem)
	if el.Name != "env:Envelope" {
		t.Fatalf("root = %q", el.Name)
	}
}

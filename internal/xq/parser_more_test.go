package xq

import (
	"strings"
	"testing"

	"xrpc/internal/xdm"
)

func TestFuseDescendantSteps(t *testing.T) {
	// boolean predicate: fused
	e := mustParseExpr(t, `doc("d")//person[@id="x"]`)
	p := e.(*Path)
	if len(p.Steps) != 1 || p.Steps[0].Axis != xdm.AxisDescendant {
		t.Errorf("boolean predicate not fused: %+v", p.Steps)
	}
	// positional predicate: NOT fused ([2] is per-parent)
	e = mustParseExpr(t, `doc("d")//person[2]`)
	p = e.(*Path)
	if len(p.Steps) != 2 {
		t.Errorf("positional predicate wrongly fused: %+v", p.Steps)
	}
	// position() in predicate: NOT fused
	e = mustParseExpr(t, `doc("d")//person[position() = 2]`)
	p = e.(*Path)
	if len(p.Steps) != 2 {
		t.Errorf("position() predicate wrongly fused: %+v", p.Steps)
	}
	// nested position() through arithmetic: NOT fused
	e = mustParseExpr(t, `doc("d")//person[position() + 1 = 2]`)
	p = e.(*Path)
	if len(p.Steps) != 2 {
		t.Errorf("nested position() wrongly fused: %+v", p.Steps)
	}
	// explicit descendant-or-self is untouched
	e = mustParseExpr(t, `$x/descendant-or-self::node()`)
	p = e.(*Path)
	if len(p.Steps) != 1 || p.Steps[0].Axis != xdm.AxisDescendantOrSelf {
		t.Errorf("explicit axis rewritten: %+v", p.Steps)
	}
}

// Fusion must not change semantics: //x[1] selects per parent.
func TestFusionSemanticsPreserved(t *testing.T) {
	e := mustParseExpr(t, `//film[name="x"]`)
	p := e.(*Path)
	if p.Steps[0].Axis != xdm.AxisDescendant {
		t.Error("//film[name=...] should fuse")
	}
}

func TestParseQuantifiedEvery(t *testing.T) {
	e := mustParseExpr(t, `every $x in (1,2) satisfies $x > 0`)
	q := e.(*Quantified)
	if !q.Every {
		t.Error("every not flagged")
	}
}

func TestParseNestedFunctionArgs(t *testing.T) {
	e := mustParseExpr(t, `concat(string(1), concat("a", "b"), "c")`)
	c := e.(*FuncCall)
	if len(c.Args) != 3 {
		t.Fatalf("args = %d", len(c.Args))
	}
	if inner, ok := c.Args[1].(*FuncCall); !ok || inner.Name != "concat" {
		t.Errorf("arg 1 = %#v", c.Args[1])
	}
}

func TestParseKindTestsInPaths(t *testing.T) {
	cases := map[string]xdm.NodeKind{
		`$x/text()`:                   xdm.TextNode,
		`$x/comment()`:                xdm.CommentNode,
		`$x/processing-instruction()`: xdm.PINode,
		`$x/child::document-node()`:   xdm.DocumentNode,
		`$x/self::element()`:          xdm.ElementNode,
		`$x/attribute::attribute()`:   xdm.AttributeNode,
	}
	for src, kind := range cases {
		e := mustParseExpr(t, src)
		p := e.(*Path)
		st := p.Steps[len(p.Steps)-1]
		if !st.Test.KindTest || st.Test.Kind != kind {
			t.Errorf("%s: test = %+v", src, st.Test)
		}
	}
	// node() kind test
	e := mustParseExpr(t, `$x/node()`)
	st := e.(*Path).Steps[0]
	if !st.Test.KindTest || !st.Test.AnyKind {
		t.Errorf("node() test = %+v", st.Test)
	}
}

func TestParseMultipleModuleHints(t *testing.T) {
	m := mustParse(t, `
import module namespace a="urn:a" at "one.xq", "two.xq", "three.xq";
1`)
	if len(m.Imports[0].AtHints) != 3 {
		t.Errorf("hints = %v", m.Imports[0].AtHints)
	}
}

func TestParseVersionDecl(t *testing.T) {
	m := mustParse(t, `xquery version "1.0"; 42`)
	if _, ok := m.Body.(*IntLit); !ok {
		t.Errorf("body = %T", m.Body)
	}
}

func TestParseIgnoredSetters(t *testing.T) {
	m := mustParse(t, `
declare boundary-space preserve;
declare ordering ordered;
7`)
	if _, ok := m.Body.(*IntLit); !ok {
		t.Errorf("body = %T", m.Body)
	}
}

func TestParseExternalFunctionAndVariable(t *testing.T) {
	m := mustParse(t, `
declare function local:ext($x as xs:integer) as xs:integer external;
1`)
	f := m.Function("local:ext", 1)
	if f == nil || !f.External {
		t.Fatalf("external function = %+v", f)
	}
}

func TestParseCharacterReferences(t *testing.T) {
	e := mustParseExpr(t, `"A&#66;&#x43;"`)
	if e.(*StringLit).Val != "ABC" {
		t.Errorf("got %q", e.(*StringLit).Val)
	}
	if _, err := ParseExpr(`"&bogus;"`); err == nil {
		t.Error("unknown entity should fail")
	}
	if _, err := ParseExpr(`"&#xZZ;"`); err == nil {
		t.Error("bad char ref should fail")
	}
}

func TestParseDoubleLiterals(t *testing.T) {
	for src, want := range map[string]float64{
		`1e3`:    1000,
		`1.5E2`:  150,
		`2e-1`:   0.2,
		`1.25e0`: 1.25,
	} {
		e := mustParseExpr(t, src)
		d, ok := e.(*DoubleLit)
		if !ok || d.Val != want {
			t.Errorf("%s = %#v", src, e)
		}
	}
	if _, err := ParseExpr(`1e`); err == nil {
		t.Error("malformed double should fail")
	}
}

func TestParseIdivUnionKeywords(t *testing.T) {
	e := mustParseExpr(t, `$a union $b`)
	if _, ok := e.(*UnionExpr); !ok {
		t.Errorf("union keyword = %T", e)
	}
	e = mustParseExpr(t, `7 idiv 2`)
	if a, ok := e.(*Arith); !ok || a.Op != "idiv" {
		t.Errorf("idiv = %#v", e)
	}
}

func TestParseFLWORMixedClauses(t *testing.T) {
	e := mustParseExpr(t, `
for $a in (1,2)
let $b := $a * 2
for $c in (1 to $b)
let $d := $c + 1, $e := $d + 1
return $e`)
	fl := e.(*FLWOR)
	if len(fl.Clauses) != 5 {
		t.Errorf("clauses = %d", len(fl.Clauses))
	}
}

func TestParseCommentInsideConstructorContent(t *testing.T) {
	e := mustParseExpr(t, `<a><!--note-->x</a>`)
	el := e.(*DirElem)
	if len(el.Content) != 2 {
		t.Fatalf("content = %d", len(el.Content))
	}
	c, ok := el.Content[0].(*DirComment)
	if !ok || c.CommentValue() != "note" {
		t.Errorf("comment = %#v", el.Content[0])
	}
}

func TestParseAttributeEntityAndEscapes(t *testing.T) {
	e := mustParseExpr(t, `<a x="&lt;{{y}}&amp;"/>`)
	el := e.(*DirElem)
	v := el.Attrs[0].Value[0].(*StringLit).Val
	if v != "<{y}&" {
		t.Errorf("attr value = %q", v)
	}
}

func TestParsePIInConstructor(t *testing.T) {
	// processing instructions inside direct content are not supported by
	// this subset; ensure a clear error rather than silence
	_, err := ParseExpr(`<a><?target data?></a>`)
	if err == nil {
		t.Skip("PI in constructor accepted (treated as text)")
	}
}

func TestErrorMessagesContainPosition(t *testing.T) {
	_, err := Parse("let $x := (1,2\nreturn $x")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestModuleFunctionLookupByArity(t *testing.T) {
	m := mustParse(t, `
declare function local:f($a as xs:integer) as xs:integer { $a };
declare function local:f($a as xs:integer, $b as xs:integer) as xs:integer { $a + $b };
local:f(1, 2)`)
	if m.Function("local:f", 1) == nil || m.Function("local:f", 2) == nil {
		t.Error("arity overloads not found")
	}
	if m.Function("local:f", 3) != nil {
		t.Error("phantom arity")
	}
}

func TestParseTypeswitch(t *testing.T) {
	e := mustParseExpr(t, `
typeswitch ($x)
case $e as element() return name($e)
case xs:integer return "int"
default $d return string($d)`)
	ts := e.(*Typeswitch)
	if len(ts.Cases) != 2 {
		t.Fatalf("cases = %d", len(ts.Cases))
	}
	if ts.Cases[0].Var != "e" || ts.Cases[0].Type.TypeName != "element()" {
		t.Errorf("case 0 = %+v", ts.Cases[0])
	}
	if ts.Cases[1].Var != "" || ts.Cases[1].Type.TypeName != "xs:integer" {
		t.Errorf("case 1 = %+v", ts.Cases[1])
	}
	if ts.DefaultVar != "d" {
		t.Errorf("default var = %q", ts.DefaultVar)
	}
	// missing case list is an error
	if _, err := ParseExpr(`typeswitch ($x) default return 1`); err == nil {
		t.Error("typeswitch without cases should fail")
	}
}

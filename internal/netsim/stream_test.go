package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

var _ StreamTransport = (*Network)(nil)

func TestSendStreamBufferedHandlerFallback(t *testing.T) {
	net := NewNetwork(0, 0)
	net.Register("xrpc://a", HandlerFunc(func(path string, body []byte) ([]byte, error) {
		return []byte("echo:" + path + ":" + string(body)), nil
	}))
	rc, err := net.SendStream("xrpc://a", "/xrpc", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if string(out) != "echo:/xrpc:hi" {
		t.Fatalf("stream payload = %q", out)
	}
	if got := net.Stats.BytesReceived.Load(); got != int64(len(out)) {
		t.Errorf("BytesReceived = %d, want %d", got, len(out))
	}
	if got := net.Stats.Requests.Load(); got != 1 {
		t.Errorf("Requests = %d, want 1", got)
	}
}

func TestSendStreamNativeStreamHandler(t *testing.T) {
	net := NewNetwork(0, 0)
	// a streaming peer producing through a pipe: bytes must reach the
	// consumer before the handler "finishes"
	net.Register("xrpc://a", StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		pr, pw := io.Pipe()
		go func() {
			for i := 0; i < 3; i++ {
				fmt.Fprintf(pw, "part%d;", i)
			}
			pw.Close()
		}()
		return pr, nil
	}))
	rc, err := net.SendStream("xrpc://a", "/xrpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	out, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "part0;part1;part2;" {
		t.Fatalf("streamed payload = %q", out)
	}
	// the same peer is reachable via the buffered path too
	buf, err := net.Send("xrpc://a", "/xrpc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, out) {
		t.Fatalf("buffered Send = %q, streamed = %q", buf, out)
	}
}

func TestSendStreamErrorsSkipStats(t *testing.T) {
	boom := errors.New("peer exploded")
	net := NewNetwork(0, 0)
	net.Register("xrpc://a", StreamHandlerFunc(func(_ string, _ []byte) (io.ReadCloser, error) {
		return nil, boom
	}))
	if _, err := net.SendStream("xrpc://a", "/xrpc", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if _, err := net.SendStream("xrpc://nope", "/xrpc", nil); err == nil {
		t.Fatal("unregistered peer did not error")
	}
	if got := net.Stats.Requests.Load(); got != 0 {
		t.Errorf("failed opens counted as requests: %d", got)
	}
}

func TestSendStreamPacesPerRead(t *testing.T) {
	var slept atomic.Int64
	net := NewNetwork(3*time.Millisecond, 1000) // 1000 B/s
	net.Sleep = func(d time.Duration) { slept.Add(int64(d)) }
	net.Register("xrpc://a", HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return bytes.Repeat([]byte("x"), 500), nil
	}))
	rc, err := net.SendStream("xrpc://a", "/xrpc", bytes.Repeat([]byte("q"), 250))
	if err != nil {
		t.Fatal(err)
	}
	// opening pays RTT + request transfer: 3ms + 250/1000 s
	atOpen := time.Duration(slept.Load())
	if want := 3*time.Millisecond + 250*time.Millisecond; atOpen != want {
		t.Fatalf("delay at open = %v, want %v", atOpen, want)
	}
	if _, err := io.ReadAll(rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	// draining pays the response transfer: 500/1000 s, spread over reads
	total := time.Duration(slept.Load())
	if want := atOpen + 500*time.Millisecond; total != want {
		t.Fatalf("delay after drain = %v, want %v", total, want)
	}
	// matches what the buffered path would have charged in one sleep
	slept.Store(0)
	if _, err := net.Send("xrpc://a", "/xrpc", bytes.Repeat([]byte("q"), 250)); err != nil {
		t.Fatal(err)
	}
	if buffered := time.Duration(slept.Load()); buffered != total {
		t.Fatalf("buffered delay %v != streamed delay %v", buffered, total)
	}
}

func TestSendStreamPerPeerStats(t *testing.T) {
	net := NewNetwork(0, 0)
	net.Register("xrpc://a", HandlerFunc(func(_ string, body []byte) ([]byte, error) {
		return append(body, body...), nil
	}))
	rc, err := net.SendStream("xrpc://a", "/xrpc", []byte("12345"))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(rc)
	rc.Close()
	reqs, sent, recv := net.PeerStats("xrpc://a")
	if reqs != 1 || sent != 5 || recv != 10 {
		t.Fatalf("peer stats = %d/%d/%d, want 1/5/10", reqs, sent, recv)
	}
}

// Package netsim simulates the network between XRPC peers. The paper's
// experiments ran on two 2 GHz Athlon64 machines on 1 Gb/s Ethernet; this
// package substitutes that testbed with an in-process network whose
// round-trip latency and bandwidth are configurable, so the
// latency-amortization effect of Bulk RPC (Table 2) and the
// bandwidth-bound throughput regime (§3.3) are both observable on one
// machine.
//
// The same Transport interface is implemented by a real HTTP transport in
// the client package, so every experiment can also run over localhost
// TCP.
package netsim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Handler is a peer endpoint: it receives an XRPC (or WS-AT) message
// body posted to a path and returns the response body.
type Handler interface {
	HandleXRPC(path string, body []byte) ([]byte, error)
}

// Transport delivers a message to a destination peer URI and returns the
// response bytes. Implementations: *Network (simulated), client.HTTPTransport.
type Transport interface {
	Send(dest, path string, body []byte) ([]byte, error)
}

// Stats counts traffic through a network.
type Stats struct {
	Requests      atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
}

// Network is an in-process network connecting registered peers, with
// simulated latency and bandwidth.
type Network struct {
	mu    sync.RWMutex
	peers map[string]Handler

	// RTT is the per-request round-trip latency (paper LAN: ~0.1-1ms;
	// WAN: tens of ms). Applied once per Send.
	RTT time.Duration
	// Bandwidth in bytes/second; 0 means unlimited. Transfer time for
	// request+response bytes is added to the delay.
	Bandwidth float64
	// Sleep is the delay function (replaceable in tests). Defaults to
	// time.Sleep.
	Sleep func(time.Duration)

	Stats Stats
}

// NewNetwork creates a network with the given round-trip latency and
// bandwidth (bytes/sec, 0 = unlimited).
func NewNetwork(rtt time.Duration, bandwidth float64) *Network {
	return &Network{
		peers:     map[string]Handler{},
		RTT:       rtt,
		Bandwidth: bandwidth,
		Sleep:     time.Sleep,
	}
}

// Register attaches a peer handler under its URI (e.g.
// "xrpc://y.example.org").
func (n *Network) Register(uri string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[uri] = h
}

// Peer returns the handler registered under uri.
func (n *Network) Peer(uri string) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.peers[uri]
	return h, ok
}

// Send implements Transport: it delivers the message to the registered
// peer after the simulated network delay.
func (n *Network) Send(dest, path string, body []byte) ([]byte, error) {
	n.mu.RLock()
	h, ok := n.peers[dest]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("netsim: no peer registered at %q", dest)
	}
	resp, err := h.HandleXRPC(path, body)
	if err != nil {
		return nil, err
	}
	delay := n.RTT
	if n.Bandwidth > 0 {
		transfer := float64(len(body)+len(resp)) / n.Bandwidth
		delay += time.Duration(transfer * float64(time.Second))
	}
	if delay > 0 && n.Sleep != nil {
		n.Sleep(delay)
	}
	n.Stats.Requests.Add(1)
	n.Stats.BytesSent.Add(int64(len(body)))
	n.Stats.BytesReceived.Add(int64(len(resp)))
	return resp, nil
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(path string, body []byte) ([]byte, error)

// HandleXRPC implements Handler.
func (f HandlerFunc) HandleXRPC(path string, body []byte) ([]byte, error) {
	return f(path, body)
}

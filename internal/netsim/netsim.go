// Package netsim simulates the network between XRPC peers. The paper's
// experiments ran on two 2 GHz Athlon64 machines on 1 Gb/s Ethernet; this
// package substitutes that testbed with an in-process network whose
// round-trip latency and bandwidth are configurable, so the
// latency-amortization effect of Bulk RPC (Table 2) and the
// bandwidth-bound throughput regime (§3.3) are both observable on one
// machine.
//
// The same Transport interface is implemented by a real HTTP transport in
// the client package, so every experiment can also run over localhost
// TCP.
package netsim

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xrpc/internal/obs"
)

// Handler is a peer endpoint: it receives an XRPC (or WS-AT) message
// body posted to a path and returns the response body.
type Handler interface {
	HandleXRPC(path string, body []byte) ([]byte, error)
}

// StreamHandler is a peer endpoint that produces its response
// incrementally: the returned reader yields response bytes as the peer
// computes them, so a consumer can start decoding before the peer has
// finished. Handlers that also implement StreamHandler are dispatched
// through it by SendStream.
type StreamHandler interface {
	HandleXRPCStream(path string, body []byte) (io.ReadCloser, error)
}

// Transport delivers a message to a destination peer URI and returns the
// response bytes. Implementations: *Network (simulated), client.HTTPTransport.
type Transport interface {
	Send(dest, path string, body []byte) ([]byte, error)
}

// StreamTransport is a Transport that can additionally deliver the
// response as a byte stream instead of one buffered slice. The caller
// must Close the returned reader (after draining it, if the connection
// is to be reused). Implementations: *Network, client.HTTPTransport.
type StreamTransport interface {
	Transport
	SendStream(dest, path string, body []byte) (io.ReadCloser, error)
}

// Stats counts traffic through a network.
type Stats struct {
	Requests      atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
}

// Network is an in-process network connecting registered peers, with
// simulated latency and bandwidth.
type Network struct {
	mu      sync.RWMutex
	peers   map[string]Handler
	perPeer map[string]*Stats
	// faults, when armed, injects per-peer failures (see faults.go).
	faults *faultState

	// RTT is the per-request round-trip latency (paper LAN: ~0.1-1ms;
	// WAN: tens of ms). Applied once per Send.
	RTT time.Duration
	// Bandwidth in bytes/second; 0 means unlimited. Transfer time for
	// request+response bytes is added to the delay.
	Bandwidth float64
	// Sleep is the delay function (replaceable in tests). Defaults to
	// time.Sleep.
	Sleep func(time.Duration)

	Stats Stats
}

// NewNetwork creates a network with the given round-trip latency and
// bandwidth (bytes/sec, 0 = unlimited).
func NewNetwork(rtt time.Duration, bandwidth float64) *Network {
	return &Network{
		peers:     map[string]Handler{},
		RTT:       rtt,
		Bandwidth: bandwidth,
		Sleep:     time.Sleep,
	}
}

// Register attaches a peer handler under its URI (e.g.
// "xrpc://y.example.org").
func (n *Network) Register(uri string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[uri] = h
}

// Peer returns the handler registered under uri.
func (n *Network) Peer(uri string) (Handler, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.peers[uri]
	return h, ok
}

// Send implements Transport: it delivers the message to the registered
// peer after the simulated network delay.
func (n *Network) Send(dest, path string, body []byte) ([]byte, error) {
	n.mu.RLock()
	h, ok := n.peers[dest]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("netsim: no peer registered at %q", dest)
	}
	if err := n.injectFault(dest); err != nil {
		return nil, err
	}
	resp, err := h.HandleXRPC(path, body)
	if err != nil {
		return nil, err
	}
	delay := n.RTT
	if n.Bandwidth > 0 {
		transfer := float64(len(body)+len(resp)) / n.Bandwidth
		delay += time.Duration(transfer * float64(time.Second))
	}
	if delay > 0 && n.Sleep != nil {
		n.Sleep(delay)
	}
	n.Stats.Requests.Add(1)
	n.Stats.BytesSent.Add(int64(len(body)))
	n.Stats.BytesReceived.Add(int64(len(resp)))
	ps := n.peerStats(dest)
	ps.Requests.Add(1)
	ps.BytesSent.Add(int64(len(body)))
	ps.BytesReceived.Add(int64(len(resp)))
	return resp, nil
}

// SendStream implements StreamTransport. The request's share of the
// simulated delay (RTT plus request transfer time) is paid when the
// stream opens; response bytes are then paced per Read at the configured
// bandwidth, so a consumer overlaps decode time with transfer time just
// as it would on a real socket. Peers implementing StreamHandler stream
// natively; buffered handlers are wrapped, preserving their semantics.
// Stats are counted only for streams that open successfully, with
// received bytes metered as they are read.
func (n *Network) SendStream(dest, path string, body []byte) (io.ReadCloser, error) {
	n.mu.RLock()
	h, ok := n.peers[dest]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("netsim: no peer registered at %q", dest)
	}
	if err := n.injectFault(dest); err != nil {
		return nil, err
	}
	var rc io.ReadCloser
	if sh, ok := h.(StreamHandler); ok {
		var err error
		if rc, err = sh.HandleXRPCStream(path, body); err != nil {
			return nil, err
		}
	} else {
		resp, err := h.HandleXRPC(path, body)
		if err != nil {
			return nil, err
		}
		rc = io.NopCloser(bytes.NewReader(resp))
	}
	delay := n.RTT
	if n.Bandwidth > 0 {
		delay += time.Duration(float64(len(body)) / n.Bandwidth * float64(time.Second))
	}
	if delay > 0 && n.Sleep != nil {
		n.Sleep(delay)
	}
	ps := n.peerStats(dest)
	n.Stats.Requests.Add(1)
	n.Stats.BytesSent.Add(int64(len(body)))
	ps.Requests.Add(1)
	ps.BytesSent.Add(int64(len(body)))
	return &meteredBody{rc: rc, net: n, ps: ps}, nil
}

// meteredBody paces and counts response bytes as the consumer reads
// them off a simulated stream.
type meteredBody struct {
	rc  io.ReadCloser
	net *Network
	ps  *Stats
}

func (m *meteredBody) Read(p []byte) (int, error) {
	n, err := m.rc.Read(p)
	if n > 0 {
		if m.net.Bandwidth > 0 && m.net.Sleep != nil {
			if d := time.Duration(float64(n) / m.net.Bandwidth * float64(time.Second)); d > 0 {
				m.net.Sleep(d)
			}
		}
		m.net.Stats.BytesReceived.Add(int64(n))
		m.ps.BytesReceived.Add(int64(n))
	}
	return n, err
}

func (m *meteredBody) Close() error { return m.rc.Close() }

func (n *Network) peerStats(dest string) *Stats {
	// fast path: steady-state sends only take the read lock, keeping
	// concurrent scatter traffic free of writer serialization
	n.mu.RLock()
	ps, ok := n.perPeer[dest]
	n.mu.RUnlock()
	if ok {
		return ps
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.perPeer == nil {
		n.perPeer = map[string]*Stats{}
	}
	if ps, ok = n.perPeer[dest]; !ok {
		ps = &Stats{}
		n.perPeer[dest] = ps
	}
	return ps
}

// PeerStats returns the per-destination traffic counters for dest
// (zeroes if the destination has seen no traffic). Experiments use this
// to show how scatter-gather splits bytes across shard peers.
func (n *Network) PeerStats(dest string) (requests, sent, received int64) {
	n.mu.RLock()
	ps, ok := n.perPeer[dest]
	n.mu.RUnlock()
	if !ok {
		return 0, 0, 0
	}
	return ps.Requests.Load(), ps.BytesSent.Load(), ps.BytesReceived.Load()
}

// RegisterMetrics promotes the network's traffic counters onto a
// registry: the aggregate counters plus one series per peer registered
// at call time. The counters stay the same atomics experiments read and
// ResetStats zeroes — the registry holds readers, not copies.
func (n *Network) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("xrpc_netsim_requests_total",
		"Requests through the simulated network.", n.Stats.Requests.Load)
	reg.CounterFunc("xrpc_netsim_sent_bytes_total",
		"Request bytes through the simulated network.", n.Stats.BytesSent.Load)
	reg.CounterFunc("xrpc_netsim_received_bytes_total",
		"Response bytes through the simulated network.", n.Stats.BytesReceived.Load)
	n.mu.RLock()
	uris := make([]string, 0, len(n.peers))
	for uri := range n.peers {
		uris = append(uris, uri)
	}
	n.mu.RUnlock()
	sort.Strings(uris)
	for _, uri := range uris {
		ps := n.peerStats(uri)
		reg.CounterFunc("xrpc_netsim_peer_requests_total",
			"Requests delivered to one peer.", ps.Requests.Load, obs.Label{Key: "peer", Value: uri})
		reg.CounterFunc("xrpc_netsim_peer_received_bytes_total",
			"Response bytes produced by one peer.", ps.BytesReceived.Load, obs.Label{Key: "peer", Value: uri})
	}
}

// ResetStats zeroes the aggregate and per-peer traffic counters.
func (n *Network) ResetStats() {
	n.Stats.Requests.Store(0)
	n.Stats.BytesSent.Store(0)
	n.Stats.BytesReceived.Store(0)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ps := range n.perPeer {
		ps.Requests.Store(0)
		ps.BytesSent.Store(0)
		ps.BytesReceived.Store(0)
	}
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(path string, body []byte) ([]byte, error)

// HandleXRPC implements Handler.
func (f HandlerFunc) HandleXRPC(path string, body []byte) ([]byte, error) {
	return f(path, body)
}

// StreamHandlerFunc adapts a function to both Handler and StreamHandler:
// buffered callers read the stream to completion.
type StreamHandlerFunc func(path string, body []byte) (io.ReadCloser, error)

// HandleXRPCStream implements StreamHandler.
func (f StreamHandlerFunc) HandleXRPCStream(path string, body []byte) (io.ReadCloser, error) {
	return f(path, body)
}

// HandleXRPC implements Handler by draining the stream.
func (f StreamHandlerFunc) HandleXRPC(path string, body []byte) ([]byte, error) {
	rc, err := f(path, body)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestSendRoutesToRegisteredPeer(t *testing.T) {
	net := NewNetwork(0, 0)
	net.Register("xrpc://a", HandlerFunc(func(path string, body []byte) ([]byte, error) {
		return append([]byte("echo:"), body...), nil
	}))
	resp, err := net.Send("xrpc://a", "/xrpc", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:hi" {
		t.Errorf("resp = %q", resp)
	}
	if _, err := net.Send("xrpc://unknown", "/xrpc", nil); err == nil {
		t.Error("expected error for unregistered peer")
	}
}

func TestStatsCounting(t *testing.T) {
	net := NewNetwork(0, 0)
	net.Register("xrpc://a", HandlerFunc(func(_ string, body []byte) ([]byte, error) {
		return make([]byte, 10), nil
	}))
	for i := 0; i < 3; i++ {
		if _, err := net.Send("xrpc://a", "/", make([]byte, 5)); err != nil {
			t.Fatal(err)
		}
	}
	if got := net.Stats.Requests.Load(); got != 3 {
		t.Errorf("requests = %d", got)
	}
	if got := net.Stats.BytesSent.Load(); got != 15 {
		t.Errorf("sent = %d", got)
	}
	if got := net.Stats.BytesReceived.Load(); got != 30 {
		t.Errorf("received = %d", got)
	}
}

func TestLatencyAndBandwidthDelay(t *testing.T) {
	net := NewNetwork(3*time.Millisecond, 1024*1024) // 1 MB/s
	var slept time.Duration
	net.Sleep = func(d time.Duration) { slept += d }
	net.Register("xrpc://a", HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return make([]byte, 512*1024), nil // 0.5 MB response
	}))
	if _, err := net.Send("xrpc://a", "/", make([]byte, 512*1024)); err != nil {
		t.Fatal(err)
	}
	// 3 ms RTT + 1 MB at 1 MB/s = ~1.003 s
	want := 3*time.Millisecond + time.Second
	if slept < want-50*time.Millisecond || slept > want+50*time.Millisecond {
		t.Errorf("slept %v, want ≈%v", slept, want)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	net := NewNetwork(0, 0)
	boom := errors.New("boom")
	net.Register("xrpc://a", HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return nil, boom
	}))
	if _, err := net.Send("xrpc://a", "/", nil); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestPeerLookup(t *testing.T) {
	net := NewNetwork(0, 0)
	h := HandlerFunc(func(_ string, _ []byte) ([]byte, error) { return nil, nil })
	net.Register("xrpc://a", h)
	if _, ok := net.Peer("xrpc://a"); !ok {
		t.Error("peer not found")
	}
	if _, ok := net.Peer("xrpc://b"); ok {
		t.Error("unexpected peer")
	}
}

package netsim

import (
	"errors"
	"io"
	"testing"
)

func okPeer(t *testing.T, net *Network, uri string) {
	t.Helper()
	net.Register(uri, HandlerFunc(func(_ string, _ []byte) ([]byte, error) {
		return []byte("ok"), nil
	}))
}

func TestFailNextConsumesTokensThenRecovers(t *testing.T) {
	net := NewNetwork(0, 0)
	okPeer(t, net, "xrpc://a")
	net.FailNext("xrpc://a", 2)
	for i := 0; i < 2; i++ {
		_, err := net.Send("xrpc://a", "/", nil)
		var inj *InjectedFault
		if !errors.As(err, &inj) || inj.Mode != "fail_next" {
			t.Fatalf("send %d: err = %v, want InjectedFault(fail_next)", i, err)
		}
	}
	if _, err := net.Send("xrpc://a", "/", nil); err != nil {
		t.Fatalf("send after burst: %v", err)
	}
}

func TestPartitionBlocksUntilHealed(t *testing.T) {
	net := NewNetwork(0, 0)
	okPeer(t, net, "xrpc://a")
	okPeer(t, net, "xrpc://b")
	net.SetPartitioned("xrpc://a", true)
	for i := 0; i < 3; i++ {
		if _, err := net.Send("xrpc://a", "/", nil); err == nil {
			t.Fatal("partitioned peer answered")
		}
	}
	// partitions are per-peer, and streams fail at open too
	if _, err := net.Send("xrpc://b", "/", nil); err != nil {
		t.Fatalf("unpartitioned peer: %v", err)
	}
	net.SetPartitioned("xrpc://a", false)
	if _, err := net.Send("xrpc://a", "/", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestSendStreamInjectsFaults(t *testing.T) {
	net := NewNetwork(0, 0)
	okPeer(t, net, "xrpc://a")
	net.FailNext("xrpc://a", 1)
	if _, err := net.SendStream("xrpc://a", "/", nil); err == nil {
		t.Fatal("stream opened through an injected fault")
	}
	rc, err := net.SendStream("xrpc://a", "/", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if b, _ := io.ReadAll(rc); string(b) != "ok" {
		t.Fatalf("stream body = %q", b)
	}
}

func TestDropRateIsSeededAndClearable(t *testing.T) {
	run := func() (fails int) {
		net := NewNetwork(0, 0)
		okPeer(t, net, "xrpc://a")
		net.SeedFaults(42)
		net.SetDropRate("xrpc://a", 0.5)
		for i := 0; i < 100; i++ {
			if _, err := net.Send("xrpc://a", "/", nil); err != nil {
				fails++
			}
		}
		return fails
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different drop counts: %d vs %d", a, b)
	}
	if a < 30 || a > 70 {
		t.Fatalf("drop count %d implausible for p=0.5 over 100 sends", a)
	}

	net := NewNetwork(0, 0)
	okPeer(t, net, "xrpc://a")
	net.SetDropRate("xrpc://a", 1)
	if _, err := net.Send("xrpc://a", "/", nil); err == nil {
		t.Fatal("p=1 drop rate let a send through")
	}
	net.ClearFaults("xrpc://a")
	if _, err := net.Send("xrpc://a", "/", nil); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}
}

package netsim

import (
	"fmt"
	"math/rand"
	"sync"
)

// Fault injection: per-peer failure modes checked before a message is
// dispatched to its handler. The simulated failures model the transport
// layer (a peer that is down, overloaded, or partitioned away), so the
// injected error is retriable in the client.Retriable sense — another
// replica, or the same peer a moment later, may well succeed. All
// randomness is drawn from one seeded source so failing runs replay.

// InjectedFault is the error returned for a send suppressed by fault
// injection. It is a transport-level failure (the peer never saw the
// request), equivalent to a 503 from an intermediary.
type InjectedFault struct {
	Dest string
	// Mode is the fault that fired: "drop", "fail_next", or "partition".
	Mode string
}

// Error implements error.
func (f *InjectedFault) Error() string {
	return fmt.Sprintf("netsim: injected fault (%s): %s unavailable", f.Mode, f.Dest)
}

// peerFaults is one destination's failure configuration.
type peerFaults struct {
	dropRate    float64
	failNext    int
	partitioned bool
}

// faultState hangs off a Network lazily: networks without injected
// faults pay one nil check per send.
type faultState struct {
	mu    sync.Mutex
	peers map[string]*peerFaults
	rng   *rand.Rand
}

// SeedFaults seeds the fault RNG so probabilistic drops replay
// deterministically. Implies fault injection is armed; call before
// SetDropRate for reproducible runs (the default seed is 1).
func (n *Network) SeedFaults(seed int64) {
	fs := n.faultsArm()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rng = rand.New(rand.NewSource(seed))
}

// SetDropRate makes a fraction p (0..1) of sends to dest fail with an
// InjectedFault. p = 0 clears the drop rate.
func (n *Network) SetDropRate(dest string, p float64) {
	fs := n.faultsArm()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.peer(dest).dropRate = p
}

// FailNext makes the next k sends to dest fail with an InjectedFault —
// the deterministic way to script a transient burst (a peer restarting,
// a load spike) without probability.
func (n *Network) FailNext(dest string, k int) {
	fs := n.faultsArm()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.peer(dest).failNext = k
}

// SetPartitioned isolates dest: every send fails until the partition
// heals with SetPartitioned(dest, false).
func (n *Network) SetPartitioned(dest string, on bool) {
	fs := n.faultsArm()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.peer(dest).partitioned = on
}

// ClearFaults removes every fault configured for dest.
func (n *Network) ClearFaults(dest string) {
	n.mu.RLock()
	fs := n.faults
	n.mu.RUnlock()
	if fs == nil {
		return
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.peers, dest)
}

// faultsArm returns the network's fault state, creating it on first use.
func (n *Network) faultsArm() *faultState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faults == nil {
		n.faults = &faultState{
			peers: map[string]*peerFaults{},
			rng:   rand.New(rand.NewSource(1)),
		}
	}
	return n.faults
}

// peer returns dest's fault config; callers hold fs.mu.
func (fs *faultState) peer(dest string) *peerFaults {
	pf, ok := fs.peers[dest]
	if !ok {
		pf = &peerFaults{}
		fs.peers[dest] = pf
	}
	return pf
}

// injectFault decides whether this send to dest fails, consuming one
// FailNext token if armed. Nil when no fault fires (the common case:
// one unsynchronized nil check).
func (n *Network) injectFault(dest string) error {
	n.mu.RLock()
	fs := n.faults
	n.mu.RUnlock()
	if fs == nil {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	pf, ok := fs.peers[dest]
	if !ok {
		return nil
	}
	switch {
	case pf.partitioned:
		return &InjectedFault{Dest: dest, Mode: "partition"}
	case pf.failNext > 0:
		pf.failNext--
		return &InjectedFault{Dest: dest, Mode: "fail_next"}
	case pf.dropRate > 0 && fs.rng.Float64() < pf.dropRate:
		return &InjectedFault{Dest: dest, Mode: "drop"}
	}
	return nil
}

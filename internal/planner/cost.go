package planner

// The cost model. Estimates are work costs in seconds — additive over
// shards, monotone in calls and bytes — not wall-clock predictions:
// the planner only ever compares two estimates for the same request,
// so the constants matter at the margins (does per-part encoding
// outweigh the pruned calls?) and the observed EWMAs do the rest.
const (
	// defaultLatency is the per-shard-request overhead assumed before
	// any call has been observed (~LAN round trip).
	defaultLatency = 1e-3
	// encodeCost is the client-side cost of encoding one call.
	encodeCost = 2e-6
	// execCost is the shard-side cost of executing one call.
	execCost = 50e-6
	// byteCost is seconds per response byte at the paper's ~10 MB/s
	// effective SOAP throughput, used when a response-size EWMA exists.
	byteCost = 1.0 / (10 << 20)
)

// ShardLoad is one contacted shard's share of a strategy: how many
// calls it would execute.
type ShardLoad struct {
	Shard int
	Calls int
}

// EstimateScatter costs a scatter strategy: one request to every load's
// shard, executing load.Calls calls there. encodeOnce marks the
// broadcast path's destination-independent body (encoded once however
// many shards are contacted); the pruned path encodes one body per
// contacted shard.
func (s *Stats) EstimateScatter(loads []ShardLoad, totalCalls int, encodeOnce bool) float64 {
	var cost float64
	if encodeOnce {
		cost += float64(totalCalls) * encodeCost
	}
	for _, l := range loads {
		cost += s.Latency(l.Shard) + float64(l.Calls)*execCost
		if rb := s.RespBytes(l.Shard); rb > 0 {
			// scale the observed per-call response size by this
			// strategy's share of the calls
			cost += rb * float64(l.Calls) * byteCost
		}
		if !encodeOnce {
			cost += float64(l.Calls) * encodeCost
		}
	}
	return cost
}

// EstimateBroadcast costs the broadcast strategy over n shards, each
// executing every call.
func (s *Stats) EstimateBroadcast(n, totalCalls int) float64 {
	loads := make([]ShardLoad, n)
	for i := range loads {
		loads[i] = ShardLoad{Shard: i, Calls: totalCalls}
	}
	return s.EstimateScatter(loads, totalCalls, true)
}

// SemiJoinChoice is the costed ship-smallest-side decision for a
// distributed semi-join: ship the probe keys to the data (classic
// semi-join) or ship the data side whole and filter at the probe side.
type SemiJoinChoice struct {
	ShipKeys bool
	// EstKeys and EstData are the two sides' estimated wire+work costs
	// in seconds (for the slow-query log's estimated-vs-actual line).
	EstKeys, EstData float64
}

// ChooseSemiJoin costs both sides of a semi-join from measured sizes:
// keys probe keys of avg keyBytes each against dataItems rows of avg
// itemBytes each. Shipping keys executes one probe per key at the data
// side and returns only matches; shipping data returns every row once.
// Ties ship keys (the paper's default: probes are usually smaller).
func (s *Stats) ChooseSemiJoin(keys int, keyBytes float64, dataItems int64, itemBytes float64) SemiJoinChoice {
	estKeys := float64(keys) * (keyBytes*byteCost + execCost + encodeCost)
	estData := float64(dataItems) * (itemBytes*byteCost + execCost/8)
	return SemiJoinChoice{ShipKeys: estKeys <= estData, EstKeys: estKeys, EstData: estData}
}

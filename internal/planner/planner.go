// Package planner is the self-driving half of the cluster's strategy
// choice: it derives routing predicates from compiled library modules
// (pathfinder.DeriveRouteKeys), keeps per-shard statistics fenced on
// the same (store version, registry generation) vector as the tier-2
// result cache, and costs the strategy space — routed, pruned,
// broadcast, ship-smallest-side semi-join — so the coordinator can
// execute the cheapest plan instead of the declared one. Underivable
// functions always fall back to broadcast: the planner may miss an
// optimisation, never produce a wrong route.
package planner

import (
	"log/slog"
	"sync"

	"xrpc/internal/modules"
	"xrpc/internal/pathfinder"
)

// Planner caches per-module route-key derivations against a module
// registry, invalidated whole-sale when the registry generation moves
// (a re-registration may change any function body).
type Planner struct {
	// Registry resolves module URIs to parsed modules; its Generation
	// fences the derivation cache.
	Registry *modules.Registry
	// Stats, when non-nil, refines the cost model with observed
	// per-shard facts (see Stats).
	Stats *Stats
	// Metrics, when non-nil, records derivation outcomes and strategy
	// decisions. Nil disables all recording.
	Metrics *Metrics
	// Logger receives the once-per-(module,function) warnings about
	// specs that cannot apply. Nil discards them.
	Logger *slog.Logger

	mu      sync.Mutex
	gen     int64
	derived map[string]*modDerivation
	warned  map[string]bool
}

// modDerivation is one module's cached analysis, indexed by function
// local name.
type modDerivation struct {
	keys   map[string]pathfinder.RouteKey
	misses map[string]string
}

// New builds a planner over a registry with fresh stats.
func New(reg *modules.Registry) *Planner {
	return &Planner{Registry: reg, Stats: NewStats()}
}

// KeyFor returns the derived route key for function fn of the module,
// deriving and caching the whole module on first use. The second
// return carries the derivation-miss reason when ok is false; a module
// that cannot be resolved at all reports every function as a miss.
func (p *Planner) KeyFor(moduleURI, atHint, fn string) (pathfinder.RouteKey, string, bool) {
	if p == nil || p.Registry == nil {
		return pathfinder.RouteKey{}, "no planner", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if gen := p.Registry.Generation(); gen != p.gen || p.derived == nil {
		// a module re-registration may have changed any body: drop every
		// cached derivation and re-analyse on demand under the new fence
		p.derived = make(map[string]*modDerivation)
		p.gen = gen
	}
	d, ok := p.derived[moduleURI]
	if !ok {
		d = p.deriveLocked(moduleURI, atHint)
		p.derived[moduleURI] = d
	}
	if k, ok := d.keys[fn]; ok {
		return k, "", true
	}
	if reason, ok := d.misses[fn]; ok {
		return pathfinder.RouteKey{}, reason, false
	}
	return pathfinder.RouteKey{}, "function not declared in module", false
}

func (p *Planner) deriveLocked(moduleURI, atHint string) *modDerivation {
	d := &modDerivation{keys: map[string]pathfinder.RouteKey{}, misses: map[string]string{}}
	var hints []string
	if atHint != "" {
		hints = []string{atHint}
	}
	m, err := p.Registry.ResolveModule(moduleURI, hints)
	if err != nil {
		d.misses[""] = "module unresolvable: " + err.Error()
		return d
	}
	keys, misses := pathfinder.DeriveRouteKeys(m)
	for _, k := range keys {
		d.keys[k.Func] = k
		p.Metrics.countDerivation("derived")
	}
	for _, ms := range misses {
		d.misses[ms.Func] = ms.Reason
		p.Metrics.countDerivation("fallback")
	}
	return d
}

// WarnInapplicable reports a route spec that exists but cannot apply to
// the live request or table (arity/KeyArg mismatch, unkeyed ranges, no
// matching container): logged once per (module, function, reason) so
// misrouting regressions are visible, counted on every occurrence so
// their rate is measurable.
func (p *Planner) WarnInapplicable(moduleURI, fn, reason string) {
	if p == nil {
		return
	}
	p.Metrics.countInapplicable()
	p.mu.Lock()
	key := moduleURI + "#" + fn + "\x00" + reason
	seen := p.warned[key]
	if !seen {
		if p.warned == nil {
			p.warned = make(map[string]bool)
		}
		p.warned[key] = true
	}
	p.mu.Unlock()
	if !seen && p.Logger != nil {
		p.Logger.Warn("route spec inapplicable; falling back to broadcast",
			"module", moduleURI, "func", fn, "reason", reason)
	}
}

package planner

import (
	"testing"
	"time"
)

func TestStatsFenceInvalidation(t *testing.T) {
	s := NewStats()
	snap := Snapshot{
		Fence:      Fence{Version: 3, Generation: 1},
		Containers: map[string]int64{ContainerKey("persons.xml", "/site/people/person"): 6},
		Docs:       1,
	}
	s.SetSnapshot(0, snap)
	if s.Refreshes() != 1 {
		t.Fatalf("refreshes = %d, want 1", s.Refreshes())
	}
	if c, ok := s.Card(0, "persons.xml", "/site/people/person"); !ok || c != 6 {
		t.Fatalf("card = %d, %v", c, ok)
	}
	// the same fence revalidates: no invalidation
	if s.NoteFence(0, snap.Fence) {
		t.Fatal("unchanged fence invalidated the snapshot")
	}
	// a commit moves the version half of the fence
	if !s.NoteFence(0, Fence{Version: 4, Generation: 1}) {
		t.Fatal("moved store version did not invalidate")
	}
	if _, ok := s.Snapshot(0); ok {
		t.Fatal("snapshot survived its fence")
	}
	// a module re-registration moves the generation half
	s.SetSnapshot(0, snap)
	if !s.NoteFence(0, Fence{Version: 3, Generation: 2}) {
		t.Fatal("moved registry generation did not invalidate")
	}
	if s.Invalidations() != 2 {
		t.Fatalf("invalidations = %d, want 2", s.Invalidations())
	}
}

func TestStatsEWMASurvivesFenceMove(t *testing.T) {
	s := NewStats()
	s.ObserveCall(1, 2*time.Millisecond, 512)
	s.SetSnapshot(1, Snapshot{Fence: Fence{Version: 1}})
	s.NoteFence(1, Fence{Version: 2})
	// behaviour averages measure the link, not the state: they outlive
	// the snapshot
	if got := s.Latency(1); got != 2e-3 {
		t.Fatalf("latency after fence move = %v, want 2ms", got)
	}
	if got := s.RespBytes(1); got != 512 {
		t.Fatalf("respBytes after fence move = %v, want 512", got)
	}
	// an unobserved shard costs the default latency
	if got := s.Latency(7); got != defaultLatency {
		t.Fatalf("unobserved latency = %v, want default %v", got, defaultLatency)
	}
}

func TestCostModelOrdersStrategies(t *testing.T) {
	s := NewStats()
	// a routed single-shard probe must beat broadcasting it to 8 shards
	routed := s.EstimateScatter([]ShardLoad{{Shard: 0, Calls: 1}}, 1, false)
	broadcast := s.EstimateBroadcast(8, 1)
	if routed >= broadcast {
		t.Fatalf("routed %v >= broadcast %v", routed, broadcast)
	}
	// broadcast cost is monotone in shard count and call count
	if s.EstimateBroadcast(2, 4) >= s.EstimateBroadcast(4, 4) {
		t.Fatal("broadcast not monotone in shards")
	}
	if s.EstimateBroadcast(2, 4) >= s.EstimateBroadcast(2, 400) {
		t.Fatal("broadcast not monotone in calls")
	}
	// a slow observed shard raises its strategies' estimates
	s.ObserveCall(0, 80*time.Millisecond, 0)
	slow := s.EstimateScatter([]ShardLoad{{Shard: 0, Calls: 1}}, 1, false)
	fast := s.EstimateScatter([]ShardLoad{{Shard: 1, Calls: 1}}, 1, false)
	if slow <= fast {
		t.Fatalf("observed-slow shard %v <= unobserved %v", slow, fast)
	}
}

func TestChooseSemiJoinShipsSmallerSide(t *testing.T) {
	s := NewStats()
	// few small keys against many fat rows: ship the keys
	if c := s.ChooseSemiJoin(10, 8, 10_000, 2048); !c.ShipKeys {
		t.Fatalf("keys side smaller but choice = ship data (%+v)", c)
	}
	// many keys against three tiny rows: ship the data
	if c := s.ChooseSemiJoin(100_000, 16, 3, 64); c.ShipKeys {
		t.Fatalf("data side smaller but choice = ship keys (%+v)", c)
	}
	// the estimates surface for the slow-query log
	if c := s.ChooseSemiJoin(1, 1, 1, 1); c.EstKeys <= 0 || c.EstData <= 0 {
		t.Fatalf("estimates not populated: %+v", c)
	}
}

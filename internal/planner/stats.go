package planner

import (
	"sync"
	"time"
)

// Fence is the validity vector of one shard's cached statistics: the
// shard's store commit version and the module-registry generation —
// the same pair the tier-2 result cache revalidates on. A commit or a
// module re-registration moves the fence and invalidates the snapshot.
type Fence struct {
	Version    int64
	Generation int64
}

// Snapshot is one shard's fenced statistics snapshot: what the shard
// holds (container cardinalities by "doc path" key, document count),
// valid exactly while the fence stands.
type Snapshot struct {
	Fence Fence
	// Containers maps doc + "\x00" + containerPath to the shard's row
	// count for that container (KeyRange Hi-Lo).
	Containers map[string]int64
	Docs       int
}

// ContainerKey builds the Containers map key.
func ContainerKey(doc, path string) string { return doc + "\x00" + path }

const ewmaAlpha = 0.2

// ewma is an exponentially weighted moving average (α = 0.2).
type ewma struct {
	v   float64
	set bool
}

func (e *ewma) observe(x float64) {
	if !e.set {
		e.v, e.set = x, true
		return
	}
	e.v += ewmaAlpha * (x - e.v)
}

// shardStat is one shard's statistics: a fenced snapshot plus rolling
// observations. The EWMAs measure behaviour (latency, response sizes,
// link cost), not state — they survive a fence move; only the snapshot
// is invalidated.
type shardStat struct {
	snap      *Snapshot
	latency   ewma // seconds per shard call
	respBytes ewma // response payload bytes per call
	linkBytes ewma // wire bytes per request on the shard's link
}

// Stats collects per-shard statistics for the cost model. All methods
// are safe for concurrent use; unknown shard indexes grow the table.
type Stats struct {
	mu     sync.RWMutex
	shards []shardStat
	// refreshes counts snapshot installs; invalidations counts snapshot
	// drops caused by a moved fence (exported via Metrics).
	refreshes     int64
	invalidations int64
}

// NewStats builds an empty statistics table.
func NewStats() *Stats { return &Stats{} }

func (s *Stats) grow(shard int) {
	for len(s.shards) <= shard {
		s.shards = append(s.shards, shardStat{})
	}
}

// SetSnapshot installs a shard's fenced snapshot (replacing any
// previous one).
func (s *Stats) SetSnapshot(shard int, snap Snapshot) {
	if s == nil || shard < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(shard)
	s.shards[shard].snap = &snap
	s.refreshes++
}

// NoteFence compares an observed shard fence against the cached
// snapshot's and drops the snapshot when they differ — a commit or
// module re-registration happened since it was taken. Returns true if
// a snapshot was invalidated. Piggybacking this on the result cache's
// shardInfo probe round keeps the statistics fenced without any extra
// wire traffic.
func (s *Stats) NoteFence(shard int, f Fence) bool {
	if s == nil || shard < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if shard >= len(s.shards) {
		return false
	}
	st := &s.shards[shard]
	if st.snap == nil || st.snap.Fence == f {
		return false
	}
	st.snap = nil
	s.invalidations++
	return true
}

// Snapshot returns the shard's cached snapshot, if still valid.
func (s *Stats) Snapshot(shard int) (Snapshot, bool) {
	if s == nil {
		return Snapshot{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if shard < 0 || shard >= len(s.shards) || s.shards[shard].snap == nil {
		return Snapshot{}, false
	}
	return *s.shards[shard].snap, true
}

// Card returns the shard's cardinality for a container, when known.
func (s *Stats) Card(shard int, doc, path string) (int64, bool) {
	snap, ok := s.Snapshot(shard)
	if !ok {
		return 0, false
	}
	c, ok := snap.Containers[ContainerKey(doc, path)]
	return c, ok
}

// ObserveCall feeds one successful shard call into the rolling
// latency/response-size averages.
func (s *Stats) ObserveCall(shard int, d time.Duration, respBytes int) {
	if s == nil || shard < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(shard)
	s.shards[shard].latency.observe(d.Seconds())
	if respBytes > 0 {
		s.shards[shard].respBytes.observe(float64(respBytes))
	}
}

// ObserveLink feeds link-level totals (e.g. netsim.PeerStats deltas)
// into the shard's wire-cost average: bytes per request on the link.
func (s *Stats) ObserveLink(shard int, requests, bytes int64) {
	if s == nil || shard < 0 || requests <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(shard)
	s.shards[shard].linkBytes.observe(float64(bytes) / float64(requests))
}

// Latency returns the shard's observed per-call latency in seconds
// (defaultLatency when unobserved).
func (s *Stats) Latency(shard int) float64 {
	if s == nil {
		return defaultLatency
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if shard < 0 || shard >= len(s.shards) || !s.shards[shard].latency.set {
		return defaultLatency
	}
	return s.shards[shard].latency.v
}

// RespBytes returns the shard's observed response size per call in
// bytes (0 when unobserved).
func (s *Stats) RespBytes(shard int) float64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if shard < 0 || shard >= len(s.shards) || !s.shards[shard].respBytes.set {
		return 0
	}
	return s.shards[shard].respBytes.v
}

// Refreshes and Invalidations expose the snapshot lifecycle counters.
func (s *Stats) Refreshes() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refreshes
}

// Invalidations counts snapshots dropped by a moved fence.
func (s *Stats) Invalidations() int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.invalidations
}

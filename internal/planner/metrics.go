package planner

import "xrpc/internal/obs"

// Metrics records the planner's decisions onto an obs.Registry.
type Metrics struct {
	// Strategy counts executed strategy decisions by name
	// (routed/pruned/broadcast/semijoin-keys/semijoin-data).
	Strategy *obs.CounterVec
	// Derivations counts per-function derivation outcomes
	// (derived/fallback) as modules are analysed.
	Derivations *obs.CounterVec
	// Inapplicable counts requests whose route spec existed but could
	// not apply (arity mismatch, unkeyed ranges, no matching container).
	Inapplicable *obs.Counter
}

// NewMetrics registers the planner metric families.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Strategy: reg.NewCounterVec("xrpc_planner_strategy_total",
			"Executed strategy decisions by the cost-based planner.", "strategy"),
		Derivations: reg.NewCounterVec("xrpc_planner_derivations_total",
			"Route-spec derivation outcomes per analysed function.", "outcome"),
		Inapplicable: reg.NewCounter("xrpc_planner_inapplicable_specs_total",
			"Requests whose route spec existed but could not apply (fell back to broadcast)."),
	}
}

// RegisterStats exposes a Stats table's snapshot lifecycle counters on
// the registry (refreshes and fence invalidations).
func RegisterStats(reg *obs.Registry, s *Stats) {
	reg.CounterFunc("xrpc_planner_stats_refreshes_total",
		"Per-shard statistics snapshots installed.", s.Refreshes)
	reg.CounterFunc("xrpc_planner_stats_invalidations_total",
		"Per-shard statistics snapshots dropped by a moved (version, generation) fence.", s.Invalidations)
}

// CountStrategy records one executed strategy decision (nil-safe).
func (m *Metrics) CountStrategy(strategy string) {
	if m != nil {
		m.Strategy.With(strategy).Inc()
	}
}

func (m *Metrics) countDerivation(outcome string) {
	if m != nil {
		m.Derivations.With(outcome).Inc()
	}
}

func (m *Metrics) countInapplicable() {
	if m != nil {
		m.Inapplicable.Inc()
	}
}

package xmark

import (
	"strings"
	"testing"

	"xrpc/internal/xdm"
)

func TestPaperConfigScaling(t *testing.T) {
	cfg := PaperConfig(1)
	if cfg.Persons != 250 || cfg.ClosedAuctions != 4875 || cfg.Matches != 6 {
		t.Errorf("paper config = %+v", cfg)
	}
	half := PaperConfig(0.5)
	if half.Persons != 125 || half.ClosedAuctions != 2437 {
		t.Errorf("half config = %+v", half)
	}
	if def := PaperConfig(0); def.Persons != 250 {
		t.Errorf("zero scale should default to 1: %+v", def)
	}
}

func TestPersonsWellFormed(t *testing.T) {
	cfg := Config{Persons: 10, Seed: 1}
	doc, err := xdm.ParseDocument("p", GeneratePersons(cfg))
	if err != nil {
		t.Fatal(err)
	}
	persons := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "person"})
	if len(persons) != 10 {
		t.Fatalf("persons = %d", len(persons))
	}
	for i, p := range persons {
		id, ok := p.Attr("id")
		if !ok || !strings.HasPrefix(id, "person") {
			t.Errorf("person %d id = %q", i, id)
		}
		if n := xdm.Step(p, xdm.AxisChild, xdm.NodeTest{Name: "name"}); len(n) != 1 {
			t.Errorf("person %d has %d names", i, len(n))
		}
		if a := xdm.Step(p, xdm.AxisChild, xdm.NodeTest{Name: "address"}); len(a) != 1 {
			t.Errorf("person %d has %d addresses", i, len(a))
		}
	}
}

func TestAuctionsWellFormedAndSized(t *testing.T) {
	cfg := Config{Persons: 10, ClosedAuctions: 20, Matches: 4, AnnotationWords: 30, Seed: 1}
	text := GenerateAuctions(cfg)
	doc, err := xdm.ParseDocument("a", text)
	if err != nil {
		t.Fatal(err)
	}
	auctions := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "closed_auction"})
	if len(auctions) != 20 {
		t.Fatalf("auctions = %d", len(auctions))
	}
	for _, a := range auctions {
		if anno := xdm.Step(a, xdm.AxisChild, xdm.NodeTest{Name: "annotation"}); len(anno) != 1 {
			t.Fatal("auction missing annotation")
		}
	}
	// AnnotationWords scales the size
	small := GenerateAuctions(Config{Persons: 10, ClosedAuctions: 20, Matches: 4, AnnotationWords: 2, Seed: 1})
	if len(text) <= len(small) {
		t.Error("larger AnnotationWords should give a larger document")
	}
}

func TestDistinctBuyersForMatches(t *testing.T) {
	cfg := Config{Persons: 8, ClosedAuctions: 50, Matches: 6, Seed: 3}
	doc, err := xdm.ParseDocument("a", GenerateAuctions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, a := range xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "buyer"}) {
		ref, _ := a.Attr("person")
		if !strings.HasPrefix(ref, "person") {
			continue
		}
		if seen[ref] {
			t.Errorf("buyer %s matched twice; matches must hit distinct persons", ref)
		}
		seen[ref] = true
	}
	if len(seen) != 6 {
		t.Errorf("distinct matched buyers = %d, want 6", len(seen))
	}
}

func TestFilmDB(t *testing.T) {
	doc, err := xdm.ParseDocument("f", GenerateFilmDB(9, []string{"A", "B", "C"}))
	if err != nil {
		t.Fatal(err)
	}
	films := xdm.Step(doc, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})
	if len(films) != 9 {
		t.Fatalf("films = %d", len(films))
	}
	// actors round-robin
	for i, f := range films {
		actor := xdm.Step(f, xdm.AxisChild, xdm.NodeTest{Name: "actor"})[0].StringValue()
		want := []string{"A", "B", "C"}[i%3]
		if actor != want {
			t.Errorf("film %d actor = %s, want %s", i, actor, want)
		}
	}
	// paper film DB parses and has the §2 shape
	pd, err := xdm.ParseDocument("p", PaperFilmDB)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(xdm.Step(pd, xdm.AxisDescendant, xdm.NodeTest{Name: "film"})); n != 3 {
		t.Errorf("paper filmDB films = %d", n)
	}
}

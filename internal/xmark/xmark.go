// Package xmark generates the synthetic workloads of the paper's
// experiments: the filmDB document of §2, and XMark-like persons.xml /
// auctions.xml documents for the §5 distributed-query experiment (in the
// paper: persons.xml 1.1 MB with 250 person nodes at peer A,
// auctions.xml 50 MB with 4875 closed_auction nodes at peer B, 6 join
// matches). The real XMark generator is C software driven by benchmark
// scale factors; this substitution produces documents with the same node
// shapes, the same join selectivity knob, and scalable sizes.
package xmark

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes document generation.
type Config struct {
	// Persons is the number of person elements in persons.xml.
	Persons int
	// ClosedAuctions is the number of closed_auction elements.
	ClosedAuctions int
	// Matches is how many closed auctions reference an existing person
	// (the join selectivity of Q7; the paper's setup has 6).
	Matches int
	// AnnotationWords scales the size of each auction's annotation text
	// (the paper's auctions.xml is ~50 MB for 4875 auctions ≈ 10 KB per
	// auction).
	AnnotationWords int
	// Seed makes generation deterministic.
	Seed int64
}

// PaperConfig is the §5 experimental setup scaled down by default; pass
// scale=1 for the paper's sizes.
func PaperConfig(scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Persons:         int(250 * scale),
		ClosedAuctions:  int(4875 * scale),
		Matches:         6,
		AnnotationWords: 120,
		Seed:            42,
	}
}

// PersonID returns the id attribute of the i-th generated person
// ("person<i>") — the probe key shared by the bench, strategies, and
// cluster workloads.
func PersonID(i int) string { return fmt.Sprintf("person%d", i) }

var firstNames = []string{
	"Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace", "Heidi",
	"Ivan", "Judy", "Ken", "Laura", "Mallory", "Niaj", "Olivia", "Peggy",
}

var lastNames = []string{
	"Smith", "Jones", "Brown", "Taylor", "Wilson", "Evans", "Thomas",
	"Johnson", "Walker", "White", "Green", "Hall", "Wood", "Martin",
}

var words = []string{
	"gold", "page", "wind", "river", "stone", "cloud", "ember", "quill",
	"harbor", "meadow", "lantern", "anchor", "cedar", "violet", "summit",
	"willow", "garnet", "falcon", "harvest", "marble", "copper", "juniper",
}

// GeneratePersons renders persons.xml: site/people/person* with
// id attributes "person0".."personN-1".
func GeneratePersons(cfg Config) string {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	b.WriteString("<site><people>\n")
	for i := 0; i < cfg.Persons; i++ {
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		fmt.Fprintf(&b, `<person id="person%d">`, i)
		fmt.Fprintf(&b, "<name>%s %s</name>", first, last)
		fmt.Fprintf(&b, "<emailaddress>mailto:%s.%s%d@example.org</emailaddress>",
			strings.ToLower(first), strings.ToLower(last), i)
		fmt.Fprintf(&b, "<address><street>%d %s Street</street><city>%s City</city><country>NL</country><zipcode>%d</zipcode></address>",
			rng.Intn(200)+1, words[rng.Intn(len(words))], words[rng.Intn(len(words))], 10000+rng.Intn(89999))
		fmt.Fprintf(&b, "<profile income=\"%d\"><interest category=\"category%d\"/><education>%s</education></profile>",
			20000+rng.Intn(80000), rng.Intn(10), []string{"High School", "College", "Graduate School"}[rng.Intn(3)])
		b.WriteString("</person>\n")
	}
	b.WriteString("</people></site>\n")
	return b.String()
}

// GenerateAuctions renders auctions.xml: site/closed_auctions/
// closed_auction* with buyer/@person references. Exactly cfg.Matches
// auctions reference person ids that exist in a persons.xml generated
// with the same Config; the remainder reference out-of-range ids.
func GenerateAuctions(cfg Config) string {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// pick the matching auction indexes deterministically; each match
	// goes to a distinct person (the paper's 6 matches are 6 distinct
	// buyers — and the semi-join rewrite of §5 groups per person, so
	// distinctness keeps all four strategies row-equivalent)
	matchAt := map[int]bool{}
	for len(matchAt) < cfg.Matches && len(matchAt) < cfg.ClosedAuctions {
		matchAt[rng.Intn(cfg.ClosedAuctions)] = true
	}
	buyers := map[int]bool{}
	nextBuyer := func() int {
		for {
			p := rng.Intn(max(cfg.Persons, 1))
			if !buyers[p] || len(buyers) >= cfg.Persons {
				buyers[p] = true
				return p
			}
		}
	}
	var b strings.Builder
	b.WriteString("<site><closed_auctions>\n")
	for i := 0; i < cfg.ClosedAuctions; i++ {
		var buyer string
		if matchAt[i] {
			buyer = fmt.Sprintf("person%d", nextBuyer())
		} else {
			buyer = fmt.Sprintf("outsider%d", cfg.Persons+i)
		}
		fmt.Fprintf(&b, `<closed_auction><seller person="outsider%d"/><buyer person="%s"/><itemref item="item%d"/>`,
			rng.Intn(100000), buyer, i)
		fmt.Fprintf(&b, "<price>%d.%02d</price><date>%02d/%02d/2006</date><quantity>1</quantity><type>Regular</type>",
			rng.Intn(500)+1, rng.Intn(100), rng.Intn(12)+1, rng.Intn(28)+1)
		b.WriteString("<annotation><author person=\"outsider1\"/><description><text>")
		for w := 0; w < cfg.AnnotationWords; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(words[rng.Intn(len(words))])
		}
		b.WriteString("</text></description><happiness>7</happiness></annotation>")
		b.WriteString("</closed_auction>\n")
	}
	b.WriteString("</closed_auctions></site>\n")
	return b.String()
}

// GenerateFilmDB renders the running-example film database of §2: films
// count films, drawing actors round-robin from the given list.
func GenerateFilmDB(films int, actors []string) string {
	if len(actors) == 0 {
		actors = []string{"Sean Connery", "Julie Andrews", "Gerard Depardieu"}
	}
	rng := rand.New(rand.NewSource(7))
	var b strings.Builder
	b.WriteString("<films>\n")
	for i := 0; i < films; i++ {
		fmt.Fprintf(&b, "<film><name>%s %s %d</name><actor>%s</actor></film>\n",
			titleWord(words[rng.Intn(len(words))]), titleWord(words[rng.Intn(len(words))]),
			i, actors[i%len(actors)])
	}
	b.WriteString("</films>\n")
	return b.String()
}

// PaperFilmDB is the exact three-film document from §2 of the paper.
const PaperFilmDB = `<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>`

func titleWord(w string) string {
	if w == "" {
		return w
	}
	return strings.ToUpper(w[:1]) + w[1:]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Command xrpcd runs an XRPC peer daemon: an HTTP server answering SOAP
// XRPC requests on POST /xrpc, serving documents and XQuery modules
// loaded from directories.
//
//	xrpcd -addr :8080 -self xrpc://localhost:8080 -docs ./docs -modules ./modules
//
// Every *.xml file in -docs is loaded into the store under its base
// name; every *.xq file in -modules is registered under its declared
// namespace URI (and its file name as a location hint).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"xrpc/internal/client"
	"xrpc/internal/core"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	self := flag.String("self", "", "this peer's xrpc:// URI (default derived from -addr)")
	docsDir := flag.String("docs", "", "directory of *.xml documents to load")
	modsDir := flag.String("modules", "", "directory of *.xq modules to register")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size for bulk request execution (<=1 = sequential)")
	flag.Parse()

	if *self == "" {
		*self = "xrpc://localhost" + *addr
	}
	peer := core.NewPeer(*self, client.NewHTTPTransport())
	peer.SetParallelism(*parallel)

	if *docsDir != "" {
		n, err := loadDocs(peer, *docsDir)
		if err != nil {
			log.Fatalf("loading documents: %v", err)
		}
		log.Printf("loaded %d document(s) from %s", n, *docsDir)
	}
	if *modsDir != "" {
		n, err := loadModules(peer, *modsDir)
		if err != nil {
			log.Fatalf("loading modules: %v", err)
		}
		log.Printf("registered %d module(s) from %s", n, *modsDir)
	}

	mux := http.NewServeMux()
	mux.Handle("/xrpc", peer.HTTPHandler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "XRPC peer %s\ndocuments: %v\n", *self, peer.Store.Names())
	})
	log.Printf("XRPC peer %s listening on %s (POST /xrpc)", *self, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func loadDocs(peer *core.Peer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if err := peer.LoadDocument(e.Name(), string(text)); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

func loadModules(peer *core.Peer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xq") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if err := peer.RegisterModule(string(text), e.Name()); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

// Command xrpcd runs an XRPC peer daemon: an HTTP server answering SOAP
// XRPC requests on POST /xrpc, serving documents and XQuery modules
// loaded from directories.
//
//	xrpcd -addr :8080 -self xrpc://localhost:8080 -docs ./docs -modules ./modules
//
// Every *.xml file in -docs is loaded into the store under its base
// name; every *.xq file in -modules is registered under its declared
// namespace URI (and its file name as a location hint).
//
// A peer can serve one shard of a larger cluster: with -shard k -of n,
// every loaded document is partitioned into n subtree ranges and only
// range k is kept. A scatter-gather coordinator (internal/cluster)
// pointed at all n peers then answers read-only bulk requests exactly
// like one peer holding the unsharded documents.
//
// With -proxy, the daemon serves no documents itself: it runs a
// streaming scatter-gather coordinator over the listed shard peers and
// answers POST /xrpc like an ordinary peer holding the unsharded
// documents — shard responses are merged in shard order and forwarded
// to the client as they arrive, so the proxy's memory stays bounded by
// -shard-buffer per shard regardless of result size:
//
//	xrpcd -addr :8080 -proxy xrpc://s0:8081,xrpc://s1:8082
//
// Each comma-separated entry is one shard, in shard order; replicas of
// a shard are separated by '|' (first entry is the primary).
//
// Version-fenced caching: -respcache N gives a peer an N MiB response
// cache (read-only bulk calls outside an isolation scope are served
// from cached result bytes until a commit steps the store version);
// -resultcache N gives a proxy an N MiB merged-result cache (warm
// requests revalidate with one shardInfo probe round per shard).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/core"
	"xrpc/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	self := flag.String("self", "", "this peer's xrpc:// URI (default derived from -addr)")
	docsDir := flag.String("docs", "", "directory of *.xml documents to load")
	modsDir := flag.String("modules", "", "directory of *.xq modules to register")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size for bulk request execution (<=1 = sequential)")
	shard := flag.Int("shard", 0, "serve shard index [0,n) of each loaded document (with -of)")
	of := flag.Int("of", 0, "total number of shards (0 = unsharded)")
	rpcTimeout := flag.Duration("rpc-timeout", client.DefaultHTTPTimeout,
		"per-phase deadline for outgoing XRPC-over-HTTP requests: connect, response headers, and each response read must complete within this long (0 = none); a slow but flowing response stream is never cut off")
	useGzip := flag.Bool("gzip", false,
		"negotiate gzip content-coding: compress outgoing requests and gzip responses for clients that accept it")
	proxyPeers := flag.String("proxy", "",
		"serve as a streaming scatter-gather proxy over these shard peers instead of a local peer: comma-separated xrpc:// URIs in shard order, '|'-separated replicas within a shard")
	shardBuffer := flag.Int("shard-buffer", 0,
		"proxy mode: per-shard read-ahead window in bytes of the streamed gather (0 = 1 MiB)")
	respCacheMiB := flag.Int("respcache", 0,
		"peer mode: version-fenced response cache size in MiB (0 = off); read-only bulk calls outside an isolation scope are answered from cached result bytes until a commit steps the store version")
	resultCacheMiB := flag.Int("resultcache", 0,
		"proxy mode: coordinator merged-result cache size in MiB (0 = off); warm requests revalidate with one shardInfo probe round per shard instead of re-executing")
	flag.Parse()

	if *proxyPeers != "" {
		if *docsDir != "" || *modsDir != "" || *of != 0 || *shard != 0 {
			log.Fatal("-proxy is exclusive with -docs/-modules/-shard/-of: the proxy serves the shard peers' documents, not its own")
		}
		if *respCacheMiB != 0 {
			log.Fatal("-respcache is a peer-mode flag; the proxy caches merged results with -resultcache")
		}
		runProxy(*addr, *proxyPeers, *rpcTimeout, *useGzip, *shardBuffer, *resultCacheMiB)
		return
	}
	if *resultCacheMiB != 0 {
		log.Fatal("-resultcache is a proxy-mode flag; a peer caches responses with -respcache")
	}

	if *of == 0 && *shard != 0 {
		log.Fatalf("-shard %d without -of: the total shard count is required", *shard)
	}
	if *of < 0 || (*of > 0 && (*shard < 0 || *shard >= *of)) {
		log.Fatalf("-shard %d -of %d: shard index must be in [0,%d)", *shard, *of, *of)
	}
	if *self == "" {
		*self = "xrpc://localhost" + *addr
	}
	transport := client.NewHTTPTransportTimeout(*rpcTimeout)
	transport.Gzip = *useGzip
	peer := core.NewPeer(*self, transport)
	peer.SetParallelism(*parallel)
	peer.Server.Gzip = *useGzip
	if *respCacheMiB > 0 {
		peer.Server.RespCache = server.NewRespCache(int64(*respCacheMiB)<<20, 0)
		log.Printf("response cache: %d MiB, version-fenced", *respCacheMiB)
	}
	if *of > 0 {
		peer.Server.Shard, peer.Server.Shards = *shard, *of
	}

	if *docsDir != "" {
		n, err := loadDocs(peer, *docsDir, *shard, *of)
		if err != nil {
			log.Fatalf("loading documents: %v", err)
		}
		if *of > 0 {
			log.Printf("loaded shard %d/%d of %d document(s) from %s", *shard, *of, n, *docsDir)
		} else {
			log.Printf("loaded %d document(s) from %s", n, *docsDir)
		}
	}
	if *modsDir != "" {
		n, err := loadModules(peer, *modsDir)
		if err != nil {
			log.Fatalf("loading modules: %v", err)
		}
		log.Printf("registered %d module(s) from %s", n, *modsDir)
	}

	mux := http.NewServeMux()
	mux.Handle("/xrpc", peer.HTTPHandler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "XRPC peer %s\n", *self)
		if *of > 0 {
			fmt.Fprintf(w, "shard: %d of %d\n", *shard, *of)
		}
		fmt.Fprintf(w, "documents: %v\n", peer.Store.Names())
	})
	// listen explicitly so -addr :0 (a kernel-chosen port) works and the
	// actual address is logged — cluster tooling parses this line to
	// build routing tables over freshly started peers
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *of > 0 {
		log.Printf("XRPC peer %s (shard %d/%d) listening on %s (POST /xrpc)", *self, *shard, *of, ln.Addr())
	} else {
		log.Printf("XRPC peer %s listening on %s (POST /xrpc)", *self, ln.Addr())
	}
	log.Fatal(http.Serve(ln, mux))
}

// runProxy serves a streaming scatter-gather coordinator over the
// given shard peers: POST /xrpc scatters a bulk request to every shard
// and streams the shard-order merge back to the client, chunk by
// chunk, holding at most window bytes per shard.
func runProxy(addr, peers string, rpcTimeout time.Duration, useGzip bool, shardBuffer, resultCacheMiB int) {
	shards := strings.Split(peers, ",")
	rt, err := cluster.NewRoutingTable(len(shards))
	if err != nil {
		log.Fatalf("-proxy: %v", err)
	}
	for i, entry := range shards {
		for _, uri := range strings.Split(entry, "|") {
			uri = strings.TrimSpace(uri)
			if uri == "" {
				log.Fatalf("-proxy: shard %d: empty peer URI", i)
			}
			if err := rt.Add(i, uri); err != nil {
				log.Fatalf("-proxy: shard %d: %v", i, err)
			}
		}
	}
	transport := client.NewHTTPTransportTimeout(rpcTimeout)
	transport.Gzip = useGzip
	co := cluster.NewCoordinator(rt, client.New(transport))
	co.MaxShardBuffer = shardBuffer
	if resultCacheMiB > 0 {
		co.ResultCache = cluster.NewResultCache(int64(resultCacheMiB) << 20)
		log.Printf("merged-result cache: %d MiB, version-vector fenced", resultCacheMiB)
	}

	mux := http.NewServeMux()
	mux.Handle("/xrpc", &cluster.Proxy{Co: co})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "XRPC scatter-gather proxy over %d shard(s)\n", rt.NumShards())
		for i := 0; i < rt.NumShards(); i++ {
			fmt.Fprintf(w, "shard %d: %s\n", i, strings.Join(rt.Replicas(i), " "))
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	log.Printf("XRPC proxy over %d shard(s) listening on %s (POST /xrpc)", rt.NumShards(), ln.Addr())
	log.Fatal(http.Serve(ln, mux))
}

func loadDocs(peer *core.Peer, dir string, shard, of int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		doc := string(text)
		if of > 0 {
			var ranges []cluster.KeyRange
			doc, ranges, err = cluster.PartitionShardWithRanges(e.Name(), doc, shard, of)
			if err != nil {
				return n, err
			}
			// advertise what this shard contains, so a coordinator can
			// rebuild range metadata from shardInfo instead of trusting
			// a static table
			for _, r := range ranges {
				peer.Server.ShardRanges = append(peer.Server.ShardRanges, r.String())
			}
		}
		if err := peer.LoadDocument(e.Name(), doc); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

func loadModules(peer *core.Peer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xq") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if err := peer.RegisterModule(string(text), e.Name()); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

// Command xrpcd runs an XRPC peer daemon: an HTTP server answering SOAP
// XRPC requests on POST /xrpc, serving documents and XQuery modules
// loaded from directories.
//
//	xrpcd -addr :8080 -self xrpc://localhost:8080 -docs ./docs -modules ./modules
//
// Every *.xml file in -docs is loaded into the store under its base
// name; every *.xq file in -modules is registered under its declared
// namespace URI (and its file name as a location hint).
//
// A peer can serve one shard of a larger cluster: with -shard k -of n,
// every loaded document is partitioned into n subtree ranges and only
// range k is kept. A scatter-gather coordinator (internal/cluster)
// pointed at all n peers then answers read-only bulk requests exactly
// like one peer holding the unsharded documents.
//
// With -proxy, the daemon serves no documents itself: it runs a
// streaming scatter-gather coordinator over the listed shard peers and
// answers POST /xrpc like an ordinary peer holding the unsharded
// documents — shard responses are merged in shard order and forwarded
// to the client as they arrive, so the proxy's memory stays bounded by
// -shard-buffer per shard regardless of result size:
//
//	xrpcd -addr :8080 -proxy xrpc://s0:8081,xrpc://s1:8082
//
// Each comma-separated entry is one shard, in shard order; replicas of
// a shard are separated by '|' (first entry is the primary).
//
// Version-fenced caching: -respcache N gives a peer an N MiB response
// cache (read-only bulk calls outside an isolation scope are served
// from cached result bytes until a commit steps the store version);
// -resultcache N gives a proxy an N MiB merged-result cache (warm
// requests revalidate with one shardInfo probe round per shard).
//
// Durability: -wal-dir makes the peer's shard durable — every commit is
// appended to an fsync'd write-ahead log before it is acknowledged, the
// store is periodically snapshotted so the log stays short, and a
// restart with the same directory replays the log over the latest
// snapshot to recover the exact pre-crash store (torn tails from a
// mid-write crash are detected by CRC and discarded). While a recovering
// peer replays, /readyz answers 503.
//
// Observability: -debug-addr starts a second HTTP listener with
// /metrics (Prometheus text), /healthz, /readyz, /debug/pprof/* and
// /debug/vars; -slow-query sets the threshold past which requests (and,
// in proxy mode, scatters) are written to the structured slow-query
// log with their trace IDs. Logs go to stderr via log/slog.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/core"
	"xrpc/internal/obs"
	"xrpc/internal/server"
	"xrpc/internal/wal"
)

var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// serveDebug starts the observability listener: Prometheus /metrics,
// liveness, readiness and the pprof/expvar debug surface.
func serveDebug(debugAddr string, reg *obs.Registry, ready func() error) {
	dln, err := net.Listen("tcp", debugAddr)
	if err != nil {
		fatalf("listen %s: %v", debugAddr, err)
	}
	logger.Info(fmt.Sprintf("debug endpoints listening on %s (/metrics /healthz /readyz /debug/pprof)", dln.Addr()))
	go func() {
		if err := http.Serve(dln, obs.DebugMux(reg, ready)); err != nil {
			logger.Error("debug server exited", "err", err)
		}
	}()
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	self := flag.String("self", "", "this peer's xrpc:// URI (default derived from -addr)")
	docsDir := flag.String("docs", "", "directory of *.xml documents to load")
	modsDir := flag.String("modules", "", "directory of *.xq modules to register")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size for bulk request execution (<=1 = sequential)")
	shard := flag.Int("shard", 0, "serve shard index [0,n) of each loaded document (with -of)")
	of := flag.Int("of", 0, "total number of shards (0 = unsharded)")
	rpcTimeout := flag.Duration("rpc-timeout", client.DefaultHTTPTimeout,
		"per-phase deadline for outgoing XRPC-over-HTTP requests: connect, response headers, and each response read must complete within this long (0 = none); a slow but flowing response stream is never cut off")
	useGzip := flag.Bool("gzip", false,
		"negotiate gzip content-coding: compress outgoing requests and gzip responses for clients that accept it")
	proxyPeers := flag.String("proxy", "",
		"serve as a streaming scatter-gather proxy over these shard peers instead of a local peer: comma-separated xrpc:// URIs in shard order, '|'-separated replicas within a shard")
	shardBuffer := flag.Int("shard-buffer", 0,
		"proxy mode: per-shard read-ahead window in bytes of the streamed gather (0 = 1 MiB)")
	respCacheMiB := flag.Int("respcache", 0,
		"peer mode: version-fenced response cache size in MiB (0 = off); read-only bulk calls outside an isolation scope are answered from cached result bytes until a commit steps the store version")
	resultCacheMiB := flag.Int("resultcache", 0,
		"proxy mode: coordinator merged-result cache size in MiB (0 = off); warm requests revalidate with one shardInfo probe round per shard instead of re-executing")
	walDir := flag.String("wal-dir", "",
		"peer mode: durable-shard directory (commit write-ahead log + snapshots); commits are fsync'd before they are acked, and a restart with the same directory recovers the exact pre-crash store — when the directory already holds state, -docs is ignored in favor of recovery")
	walSnapshotMiB := flag.Int("wal-snapshot", 0,
		"snapshot the store and truncate the WAL after this many MiB of log growth (0 = 8 MiB default)")
	debugAddr := flag.String("debug-addr", "",
		"observability listen address serving /metrics, /healthz, /readyz, /debug/pprof/* and /debug/vars (empty = off)")
	slowQuery := flag.Duration("slow-query", 0,
		"slow-query log threshold: requests (and proxy scatters) slower than this are logged with trace ID, per-shard timings and cache disposition (0 = off)")
	flag.Parse()

	if *proxyPeers != "" {
		if *docsDir != "" || *modsDir != "" || *of != 0 || *shard != 0 || *walDir != "" {
			fatalf("-proxy is exclusive with -docs/-modules/-shard/-of/-wal-dir: the proxy serves the shard peers' documents, not its own")
		}
		if *respCacheMiB != 0 {
			fatalf("-respcache is a peer-mode flag; the proxy caches merged results with -resultcache")
		}
		runProxy(*addr, *proxyPeers, *rpcTimeout, *useGzip, *shardBuffer, *resultCacheMiB,
			*debugAddr, *slowQuery)
		return
	}
	if *resultCacheMiB != 0 {
		fatalf("-resultcache is a proxy-mode flag; a peer caches responses with -respcache")
	}

	if *of == 0 && *shard != 0 {
		fatalf("-shard %d without -of: the total shard count is required", *shard)
	}
	if *of < 0 || (*of > 0 && (*shard < 0 || *shard >= *of)) {
		fatalf("-shard %d -of %d: shard index must be in [0,%d)", *shard, *of, *of)
	}
	if *self == "" {
		*self = "xrpc://localhost" + *addr
	}
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
	}
	transport := client.NewHTTPTransportTimeout(*rpcTimeout)
	transport.Gzip = *useGzip
	transport.Metrics = client.NewTransportMetrics(reg)
	peer := core.NewPeer(*self, transport)
	peer.SetParallelism(*parallel)
	peer.Server.Gzip = *useGzip
	if *respCacheMiB > 0 {
		peer.Server.RespCache = server.NewRespCache(int64(*respCacheMiB)<<20, 0)
		logger.Info("response cache enabled", "mib", *respCacheMiB, "fence", "store version")
	}
	if *of > 0 {
		peer.Server.Shard, peer.Server.Shards = *shard, *of
	}
	peer.EnableObs(reg, obs.NewSlowLog(logger, *slowQuery))

	// a WAL directory that already holds a snapshot is the authoritative
	// state: the documents (and store version) come from recovery, not
	// from re-loading -docs, which would silently shadow committed updates
	hasState := *walDir != "" && wal.HasSnapshot(*walDir)
	if *docsDir != "" && !hasState {
		n, err := loadDocs(peer, *docsDir, *shard, *of)
		if err != nil {
			fatalf("loading documents: %v", err)
		}
		if *of > 0 {
			logger.Info("documents loaded", "count", n, "dir", *docsDir, "shard", *shard, "of", *of)
		} else {
			logger.Info("documents loaded", "count", n, "dir", *docsDir)
		}
	} else if hasState && *docsDir != "" {
		logger.Info("ignoring -docs: recovering durable state", "wal", *walDir)
	}
	if *modsDir != "" {
		n, err := loadModules(peer, *modsDir)
		if err != nil {
			fatalf("loading modules: %v", err)
		}
		logger.Info("modules registered", "count", n, "dir", *modsDir)
	}

	// the debug listener comes up before recovery so /readyz answers 503
	// while the WAL replays instead of refusing connections
	var recovering atomic.Bool
	ready := peer.Ready
	if *walDir != "" {
		recovering.Store(true)
		ready = func() error {
			if recovering.Load() {
				return fmt.Errorf("WAL replay in progress")
			}
			return peer.Ready()
		}
	}
	if *debugAddr != "" {
		serveDebug(*debugAddr, reg, ready)
	}
	if *walDir != "" {
		recovered, err := peer.Server.EnableWAL(server.WALConfig{
			Dir:           *walDir,
			SnapshotBytes: int64(*walSnapshotMiB) << 20,
			Metrics:       wal.NewMetrics(reg),
		})
		if err != nil {
			fatalf("wal %s: %v", *walDir, err)
		}
		if recovered {
			logger.Info("recovered durable state", "wal", *walDir, "version", peer.Store.Version())
		} else {
			logger.Info("durability enabled", "wal", *walDir, "version", peer.Store.Version())
		}
		recovering.Store(false)
	}

	mux := http.NewServeMux()
	mux.Handle("/xrpc", peer.HTTPHandler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "XRPC peer %s\n", *self)
		if *of > 0 {
			fmt.Fprintf(w, "shard: %d of %d\n", *shard, *of)
		}
		fmt.Fprintf(w, "documents: %v\n", peer.Store.Names())
	})
	// listen explicitly so -addr :0 (a kernel-chosen port) works and the
	// actual address is logged — cluster tooling parses the "listening
	// on <addr> " part of this line to build routing tables over freshly
	// started peers, so the message keeps that exact shape
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	if *of > 0 {
		logger.Info(fmt.Sprintf("XRPC peer %s (shard %d/%d) listening on %s (POST /xrpc)", *self, *shard, *of, ln.Addr()))
	} else {
		logger.Info(fmt.Sprintf("XRPC peer %s listening on %s (POST /xrpc)", *self, ln.Addr()))
	}
	fatalf("serve: %v", http.Serve(ln, mux))
}

// runProxy serves a streaming scatter-gather coordinator over the
// given shard peers: POST /xrpc scatters a bulk request to every shard
// and streams the shard-order merge back to the client, chunk by
// chunk, holding at most window bytes per shard.
func runProxy(addr, peers string, rpcTimeout time.Duration, useGzip bool, shardBuffer, resultCacheMiB int,
	debugAddr string, slowQuery time.Duration) {
	shards := strings.Split(peers, ",")
	rt, err := cluster.NewRoutingTable(len(shards))
	if err != nil {
		fatalf("-proxy: %v", err)
	}
	for i, entry := range shards {
		for _, uri := range strings.Split(entry, "|") {
			uri = strings.TrimSpace(uri)
			if uri == "" {
				fatalf("-proxy: shard %d: empty peer URI", i)
			}
			if err := rt.Add(i, uri); err != nil {
				fatalf("-proxy: shard %d: %v", i, err)
			}
		}
	}
	var reg *obs.Registry
	if debugAddr != "" {
		reg = obs.NewRegistry()
	}
	transport := client.NewHTTPTransportTimeout(rpcTimeout)
	transport.Gzip = useGzip
	transport.Metrics = client.NewTransportMetrics(reg)
	co := cluster.NewCoordinator(rt, client.New(transport))
	co.MaxShardBuffer = shardBuffer
	co.Client.RegisterMetrics(reg)
	co.Metrics = cluster.NewMetrics(reg, rt.NumShards())
	co.SlowLog = obs.NewSlowLog(logger, slowQuery)
	co.OnEvict = func(shard int, uri string, reason error) {
		logger.Warn("replica evicted", "shard", shard, "peer", uri, "err", reason)
	}
	if resultCacheMiB > 0 {
		co.ResultCache = cluster.NewResultCache(int64(resultCacheMiB) << 20)
		co.ResultCache.RegisterMetrics(reg)
		logger.Info("merged-result cache enabled", "mib", resultCacheMiB, "fence", "version vector")
	}

	if debugAddr != "" {
		serveDebug(debugAddr, reg, rt.Validate)
	}

	mux := http.NewServeMux()
	mux.Handle("/xrpc", &cluster.Proxy{Co: co, Log: logger})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "XRPC scatter-gather proxy over %d shard(s)\n", rt.NumShards())
		for i := 0; i < rt.NumShards(); i++ {
			fmt.Fprintf(w, "shard %d: %s\n", i, strings.Join(rt.Replicas(i), " "))
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatalf("listen %s: %v", addr, err)
	}
	logger.Info(fmt.Sprintf("XRPC proxy over %d shard(s) listening on %s (POST /xrpc)", rt.NumShards(), ln.Addr()))
	fatalf("serve: %v", http.Serve(ln, mux))
}

func loadDocs(peer *core.Peer, dir string, shard, of int) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		doc := string(text)
		if of > 0 {
			var ranges []cluster.KeyRange
			var locs []cluster.ElemLoc
			doc, ranges, locs, err = cluster.PartitionShardWithMeta(e.Name(), doc, shard, of)
			if err != nil {
				return n, err
			}
			// advertise what this shard contains, so a coordinator can
			// rebuild range metadata from shardInfo instead of trusting
			// a static table; the element-name census rides along so a
			// derived route can prove its container is the only home of
			// the elements it selects
			for _, r := range ranges {
				peer.Server.ShardRanges = append(peer.Server.ShardRanges, r.String())
			}
			for _, l := range locs {
				peer.Server.ShardRanges = append(peer.Server.ShardRanges, l.String())
			}
		}
		if err := peer.LoadDocument(e.Name(), doc); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

func loadModules(peer *core.Peer, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xq") {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return n, err
		}
		if err := peer.RegisterModule(string(text), e.Name()); err != nil {
			return n, fmt.Errorf("%s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

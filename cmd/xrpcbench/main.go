// Command xrpcbench regenerates the paper's evaluation tables and
// figures:
//
//	xrpcbench -table 2           Table 2  (bulk vs one-at-a-time × cache)
//	xrpcbench -table 3           Table 3  (wrapper latency phases)
//	xrpcbench -table 4           Table 4  (Q7 distributed strategies)
//	xrpcbench -table throughput  §3.3 request/response throughput
//	xrpcbench -table fig1        Figure 1 (Bulk RPC intermediate tables)
//	xrpcbench -table bulkexec    server-side bulk execution: sequential vs parallel
//	xrpcbench -table algebra     columnar vs row-store relational operators
//	xrpcbench -table cluster     scatter-gather Bulk RPC over 1/2/4/8 shard peers
//	xrpcbench -table cluster-update  routed vs broadcast writes, pruned vs full probes
//	xrpcbench -table cache       three-tier cache: cold vs warm vs post-invalidation
//	xrpcbench -table planner     self-driving planner: derived routes + cost model vs broadcast
//	xrpcbench -table wire        SOAP encode/decode: streaming vs reference path
//	xrpcbench -table all         everything
//
// The -scale flag scales the XMark data (1.0 = the paper's 250 persons /
// 4875 auctions); -rtt sets the simulated round-trip latency; -parallel
// sets the worker pool sizes compared by the bulkexec experiment; -gzip
// adds gzip content-coding sizes to the wire experiment; -wire-json
// writes the wire rows as a JSON snapshot (BENCH_wire.json);
// -cluster-json writes the cluster experiments — the scatter-gather
// sweep with its streamed-vs-buffered peak-heap columns and the
// cluster-update rows — as one JSON snapshot (BENCH_cluster.json);
// -cache-json writes the cache experiment rows as a JSON snapshot
// (BENCH_cache.json); -planner-json writes the planner experiment rows
// as a JSON snapshot (BENCH_planner.json).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"xrpc/internal/bench"
	"xrpc/internal/xmark"
)

func main() {
	table := flag.String("table", "all",
		"which experiment(s), comma-separated: 2, 3, 4, throughput, fig1, bulkexec, algebra, cluster, cluster-update, cache, planner, wire, all")
	scale := flag.Float64("scale", 0.2, "XMark scale (1.0 = paper size: 250 persons, 4875 auctions)")
	rtt := flag.Duration("rtt", 200*time.Microsecond, "simulated network round-trip latency")
	x := flag.Int("x", 1000, "loop iterations for Table 2/3 ($x)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"largest worker pool size for the bulkexec experiment")
	calls := flag.Int("calls", 256, "bulk request size for the bulkexec experiment")
	rows := flag.Int("rows", 16384, "input rows for the algebra experiment")
	useGzip := flag.Bool("gzip", false, "measure gzip content-coding sizes in the wire experiment")
	wireJSON := flag.String("wire-json", "", "write the wire experiment rows to this file as JSON")
	clusterJSON := flag.String("cluster-json", "", "write the cluster experiment rows (scatter sweep + cluster-update) to this file as JSON")
	cacheJSON := flag.String("cache-json", "", "write the cache experiment rows to this file as JSON")
	plannerJSON := flag.String("planner-json", "", "write the planner experiment rows to this file as JSON")
	flag.Parse()

	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	selected := map[string]bool{}
	for _, t := range strings.Split(*table, ",") {
		selected[strings.TrimSpace(t)] = true
	}
	all := selected["all"]
	if all || selected["2"] {
		run("Table 2", func() error { return runTable2(*rtt, *x) })
	}
	if all || selected["throughput"] {
		run("Throughput (§3.3)", runThroughput)
	}
	if all || selected["3"] {
		run("Table 3", func() error { return runTable3(*scale, *x) })
	}
	if all || selected["4"] {
		run("Table 4", func() error { return runTable4(*scale) })
	}
	if all || selected["fig1"] {
		run("Figure 1", runFigure1)
	}
	if all || selected["bulkexec"] {
		run("Bulk execution (sequential vs parallel)", func() error {
			return runBulkExec(*calls, *parallel, *scale)
		})
	}
	if all || selected["algebra"] {
		run("Algebra operators (columnar vs row-store)", func() error {
			return runAlgebra(*rows)
		})
	}
	var scatterResults []bench.ClusterBenchResult
	var updateRows []bench.ClusterUpdateRow
	if all || selected["cluster"] {
		run("Cluster scatter-gather (1/2/4/8 shard peers)", func() (err error) {
			scatterResults, err = runCluster(*scale, *rtt)
			return err
		})
	}
	if all || selected["cluster-update"] {
		run("Cluster writes & pruned probes (routed vs broadcast)", func() (err error) {
			updateRows, err = runClusterUpdate(*scale, *rtt)
			return err
		})
	}
	if *clusterJSON != "" && (scatterResults != nil || updateRows != nil) {
		data, err := bench.ClusterSnapshotJSON(scatterResults, updateRows)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster snapshot: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*clusterJSON, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cluster snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *clusterJSON)
	}
	if all || selected["cache"] {
		run("Three-tier cache (cold vs warm vs post-invalidation)", func() error {
			return runCache(*scale, *rtt, *cacheJSON)
		})
	}
	if all || selected["planner"] {
		run("Self-driving planner (derived routes + cost model vs broadcast)", func() error {
			return runPlanner(*scale, *rtt, *plannerJSON)
		})
	}
	if all || selected["wire"] {
		run("SOAP wire path (streaming vs reference)", func() error {
			return runWire(*useGzip, *wireJSON)
		})
	}
}

// runPlanner sweeps the self-driving coordinator — ZERO hand-written
// RouteSpecs, every route derived by the compiler — against the plain
// broadcast coordinator over 1/2/4/8 shard peers: keyed point probes,
// a derived range scan, and the cost-model semi-join shipping keys,
// data, or the measured smaller side. Every mode's response is verified
// byte-identical to the unsharded single-peer baseline before timing.
func runPlanner(scale float64, rtt time.Duration, jsonPath string) error {
	cfg := xmark.PaperConfig(scale)
	fmt.Printf("XMark: %d persons, %d closed auctions; rtt %v, %d MB/s links\n",
		cfg.Persons, cfg.ClosedAuctions, rtt, bench.ClusterBandwidth/(1024*1024))
	rows, err := bench.RunPlannerBench(cfg, []int{1, 2, 4, 8}, rtt, 3)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatPlannerBench(rows))
	fmt.Println("\nzero hand-written route specs; every response verified byte-identical to the unsharded baseline before timing")
	if jsonPath != "" {
		data, err := bench.PlannerSnapshotJSON(rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runCache sweeps the version-fenced cache tiers over 1/2/4/8 shard
// peers: the same key-predicate probe bulk timed on a fresh deployment
// (cold), repeated (warm: one shardInfo revalidation round, results
// from coordinator memory), and right after a routed single-shard
// commit (the fence redoes exactly the invalidated work). Every timed
// response is byte-compared against an unsharded single-peer execution.
func runCache(scale float64, rtt time.Duration, jsonPath string) error {
	cfg := xmark.PaperConfig(scale)
	fmt.Printf("XMark: %d persons; rtt %v, %d MB/s links\n",
		cfg.Persons, rtt, bench.ClusterBandwidth/(1024*1024))
	rows, err := bench.RunCacheBench(cfg, []int{1, 2, 4, 8}, rtt, 5)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatCacheBench(rows))
	fmt.Println("\nevery timed response (cold, warm, post-write) verified byte-identical to the unsharded single-peer baseline")
	if jsonPath != "" {
		data, err := bench.CacheSnapshotJSON(rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runClusterUpdate contrasts the range-aware cluster with its broadcast
// predecessor: updating bulks routed to the owning shards (2PC over the
// touched primaries) vs broadcast to every primary, and key-predicate
// probes pruned by range metadata vs scattered to all shards. Every
// mode's results are verified byte-identical to an unsharded
// single-peer execution before timing.
func runClusterUpdate(scale float64, rtt time.Duration) ([]bench.ClusterUpdateRow, error) {
	cfg := xmark.PaperConfig(scale)
	fmt.Printf("XMark: %d persons; rtt %v, %d MB/s links\n",
		cfg.Persons, rtt, bench.ClusterBandwidth/(1024*1024))
	rows, err := bench.RunClusterUpdateBench(cfg, []int{2, 4, 8}, rtt, 3)
	if err != nil {
		return nil, err
	}
	fmt.Print(bench.FormatClusterUpdateBench(rows))
	fmt.Println("\nall modes verified byte-identical to the unsharded single-peer baseline before timing")
	return rows, nil
}

// runWire contrasts the streaming wire path (pooled encoder + envelope
// pull-decoder) with the seed's reference path (strings.Builder encoder
// + DOM decoder) across message shapes. Outputs are verified identical
// before timing: both encoders must emit the same bytes, and both
// decoders' results must re-encode identically.
func runWire(gzipSizes bool, jsonPath string) error {
	rows, err := bench.RunWireBench(3, gzipSizes)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatWireBench(rows))
	fmt.Println("\noutputs verified identical between streaming and reference paths before timing")
	if jsonPath != "" {
		data, err := bench.WireSnapshotJSON(rows)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// runCluster sweeps the scatter-gather coordinator over 1, 2, 4, and 8
// shard peers for the probe and scan workloads. At every peer count the
// merged response is verified byte-identical to the unsharded
// single-peer response before any timing happens; the per-shard byte
// columns show the partitioner splitting traffic across the cluster;
// the peak-heap columns contrast the streamed shard-order merge with
// the buffered collect-then-encode reference.
func runCluster(scale float64, rtt time.Duration) ([]bench.ClusterBenchResult, error) {
	cfg := xmark.PaperConfig(scale)
	fmt.Printf("XMark: %d persons, %d closed auctions; rtt %v, %d MB/s links\n",
		cfg.Persons, cfg.ClosedAuctions, rtt, bench.ClusterBandwidth/(1024*1024))
	results, err := bench.RunClusterBench(cfg, []int{1, 2, 4, 8}, rtt, 3)
	if err != nil {
		return nil, err
	}
	fmt.Print(bench.FormatClusterBench(results))
	fmt.Println("\nmerged responses verified byte-identical to the unsharded single-peer response at every peer count")
	return results, nil
}

// runAlgebra contrasts the columnar vectorized operators with the
// seed's row-store implementations on the loop-lifting hot shapes,
// verifying identical outputs before timing.
func runAlgebra(rows int) error {
	res, err := bench.RunAlgebraBench(rows, 5)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatAlgebraBench(res))
	fmt.Println("\noutputs verified identical between layouts before timing")
	return nil
}

// runBulkExec contrasts sequential execution of one read-only bulk
// request with the NativeExecutor worker pool at increasing sizes, and
// verifies that every parallel response is byte-identical to the
// sequential one.
func runBulkExec(calls, maxWorkers int, scale float64) error {
	cfg := xmark.PaperConfig(scale)
	env, err := bench.NewBulkExecEnv(calls, cfg)
	if err != nil {
		return err
	}
	// untimed warm-up: prime the function cache so the workers=1
	// baseline does not pay one-time module compilation
	if _, _, err := env.Run(1); err != nil {
		return err
	}
	base, baseResp, err := env.Run(1)
	if err != nil {
		return err
	}
	fmt.Printf("bulk request: %d getPerson calls over %d persons\n", calls, cfg.Persons)
	fmt.Printf("workers %2d: %8.2f ms\n", 1, float64(base.Microseconds())/1000.0)
	for workers := 2; workers <= maxWorkers; workers *= 2 {
		d, resp, err := env.Run(workers)
		if err != nil {
			return err
		}
		if !bytes.Equal(resp, baseResp) {
			return fmt.Errorf("parallel response (workers=%d) differs from sequential", workers)
		}
		fmt.Printf("workers %2d: %8.2f ms  (%.2fx)\n",
			workers, float64(d.Microseconds())/1000.0, float64(base)/float64(d))
	}
	return nil
}

func runTable2(rtt time.Duration, x int) error {
	xs := []int{1, x}
	cells, err := bench.RunTable2(rtt, xs)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable2(cells, xs))
	fmt.Println("\npaper (msec, 2×Athlon64 @ 1 Gb/s):")
	fmt.Println("              | No cache:  $x=1 133, $x=1000 2696 | cache: $x=1 2.6, $x=1000 2696  (one-at-a-time)")
	fmt.Println("              | No cache:  $x=1 130, $x=1000  134 | cache: $x=1 2.7, $x=1000    4  (bulk)")
	return nil
}

func runThroughput() error {
	for _, kb := range []int{64, 256, 1024, 4096} {
		req, err := bench.RunThroughput(kb, false)
		if err != nil {
			return err
		}
		resp, err := bench.RunThroughput(kb, true)
		if err != nil {
			return err
		}
		fmt.Printf("payload %5d KB: request %7.1f MB/s   response %7.1f MB/s\n",
			kb, req.MBPerSecond, resp.MBPerSecond)
	}
	fmt.Println("\npaper: 8 MB/s (large requests), 14 MB/s (large responses) — CPU-bound on 1 Gb/s LAN")
	return nil
}

func runTable3(scale float64, x int) error {
	cfg := xmark.PaperConfig(scale)
	rows, err := bench.RunTable3([]int{1, x}, cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable3(rows))
	fmt.Println("\npaper (msec, Saxon-B 8.7):")
	fmt.Println("  echoVoid  $x=1     total  275  compile 178  treebuild  4.6  exec   92")
	fmt.Println("  echoVoid  $x=1000  total  590  compile 178  treebuild   86  exec  325")
	fmt.Println("  getPerson $x=1     total 4276  compile 185  treebuild 1956  exec 2134")
	fmt.Println("  getPerson $x=1000  total 8167  compile 185  treebuild 1973  exec 6010")
	return nil
}

func runTable4(scale float64) error {
	cfg := xmark.PaperConfig(scale)
	fmt.Printf("XMark: %d persons, %d closed auctions, %d matches\n",
		cfg.Persons, cfg.ClosedAuctions, cfg.Matches)
	results, err := bench.RunTable4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable4(results))
	fmt.Println("\npaper (msec): data shipping 28122 | pushdown 25799 | relocation 53184 | semi-join 10278")
	return nil
}

func runFigure1() error {
	trace, err := bench.RunFigure1()
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatFigure1(trace))
	return nil
}

// Command xmarkgen generates the experiment documents: XMark-like
// persons.xml and auctions.xml (the §5 setup) and the filmDB.xml running
// example.
//
//	xmarkgen -scale 1.0 -out ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"xrpc/internal/xmark"
)

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor (1.0 = paper: 250 persons, 4875 auctions)")
	matches := flag.Int("matches", 6, "join matches between persons and auctions")
	films := flag.Int("films", 0, "if > 0, also generate a filmDB.xml with this many films")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	cfg := xmark.PaperConfig(*scale)
	cfg.Matches = *matches

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, text string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(text))
	}
	write("persons.xml", xmark.GeneratePersons(cfg))
	write("auctions.xml", xmark.GenerateAuctions(cfg))
	if *films > 0 {
		write("filmDB.xml", xmark.GenerateFilmDB(*films, nil))
	} else {
		write("filmDB.xml", xmark.PaperFilmDB)
	}
}

// Command xrpcq executes an XQuery query (with the XRPC execute-at
// extension) as a local peer, sending remote calls over HTTP.
//
//	xrpcq -q '1 + 1'
//	xrpcq -f query.xq -docs ./docs -modules ./modules
//	xrpcq -f distributed.xq -engine interp
//
// Remote destinations in execute at {"xrpc://host:port"} are reached via
// HTTP POST /xrpc, so xrpcq interoperates with running xrpcd daemons.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"xrpc/internal/client"
	"xrpc/internal/core"
)

func main() {
	query := flag.String("q", "", "query text")
	file := flag.String("f", "", "query file")
	docsDir := flag.String("docs", "", "directory of *.xml documents")
	modsDir := flag.String("modules", "", "directory of *.xq modules")
	engine := flag.String("engine", "bulk", "execution engine: bulk (loop-lifted) or interp (one-at-a-time)")
	flag.Parse()

	src := *query
	if *file != "" {
		text, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(text)
	}
	if src == "" {
		fmt.Fprintln(os.Stderr, "usage: xrpcq -q <query> | -f <file> [-docs dir] [-modules dir] [-engine bulk|interp]")
		os.Exit(2)
	}

	peer := core.NewPeer("xrpc://localhost", client.NewHTTPTransport())
	if *engine == "interp" {
		peer.Engine = core.EngineInterpreted
	}
	if *docsDir != "" {
		if err := loadDir(*docsDir, ".xml", func(name, text string) error {
			return peer.LoadDocument(name, text)
		}); err != nil {
			log.Fatal(err)
		}
	}
	if *modsDir != "" {
		if err := loadDir(*modsDir, ".xq", func(name, text string) error {
			return peer.RegisterModule(text, name)
		}); err != nil {
			log.Fatal(err)
		}
	}

	res, err := peer.Query(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Serialize())
	if res.Requests > 0 {
		fmt.Fprintf(os.Stderr, "(%d XRPC request(s) to %d peer(s))\n", res.Requests, len(res.Peers))
	}
}

func loadDir(dir, ext string, load func(name, text string) error) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ext) {
			continue
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		if err := load(e.Name(), string(text)); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
	}
	return nil
}

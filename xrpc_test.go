package xrpc

import (
	"strings"
	"testing"
	"time"

	"xrpc/internal/xmark"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

const updModule = `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film> into doc("filmDB.xml")/films };`

func twoPeers(t *testing.T) (*Network, *Peer, *Peer) {
	t.Helper()
	net := NewNetwork(0, 0)
	y := NewPeer("xrpc://y.example.org", net)
	if err := y.LoadDocument("filmDB.xml", xmark.PaperFilmDB); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{filmModule, updModule} {
		if err := y.RegisterModule(m, "http://x.example.org/film.xq"); err != nil {
			t.Fatal(err)
		}
	}
	net.Register("xrpc://y.example.org", y.Handler())
	local := NewPeer("xrpc://local", net)
	if err := local.LoadDocument("filmDB.xml", xmark.PaperFilmDB); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{filmModule, updModule} {
		if err := local.RegisterModule(m, "http://x.example.org/film.xq"); err != nil {
			t.Fatal(err)
		}
	}
	net.Register("xrpc://local", local.Handler())
	return net, local, y
}

func TestQuickstartQ1(t *testing.T) {
	_, local, _ := twoPeers(t)
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  execute at {"xrpc://y.example.org"}
  {f:filmsByActor("Sean Connery")}
} </films>`)
	if err != nil {
		t.Fatal(err)
	}
	want := "<films><name>The Rock</name><name>Goldfinger</name></films>"
	if got := res.Serialize(); got != want {
		t.Errorf("Q1 = %s", got)
	}
}

func TestLoopLiftedIsDefaultAndBulk(t *testing.T) {
	_, local, y := twoPeers(t)
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
for $actor in ("Julie Andrews", "Sean Connery")
return execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 {
		t.Errorf("loop-lifted query sent %d requests, want 1", res.Requests)
	}
	if y.ServerStats().ServedCalls != 2 {
		t.Errorf("y served %d calls, want 2", y.ServerStats().ServedCalls)
	}
}

func TestInterpretedEngineOneAtATime(t *testing.T) {
	_, local, y := twoPeers(t)
	local.Engine = EngineInterpreted
	_, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
for $actor in ("Julie Andrews", "Sean Connery")
return execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := y.ServerStats().ServedRequests; got != 2 {
		t.Errorf("interpreter sent %d requests, want 2 (one per iteration)", got)
	}
}

func TestDistributedUpdateWith2PC(t *testing.T) {
	_, local, y := twoPeers(t)
	res, err := local.Query(`
import module namespace u="upd" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {u:addFilm("Dr. No", "Sean Connery")}`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Updating {
		t.Error("query not classified as updating")
	}
	check, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})`)
	if err != nil {
		t.Fatal(err)
	}
	if got := check.Serialize(); got != "3" {
		t.Errorf("films after distributed update = %s, want 3", got)
	}
	// the update went through prepare/commit
	if logs := y.Server.PrepareLog(); len(logs) != 1 {
		t.Errorf("prepare log entries = %d, want 1", len(logs))
	}
}

func TestLocalUpdateApplies(t *testing.T) {
	_, local, _ := twoPeers(t)
	if _, err := local.Query(`delete node doc("filmDB.xml")//film[1]`); err != nil {
		t.Fatal(err)
	}
	res, err := local.Query(`count(doc("filmDB.xml")//film)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "2" {
		t.Errorf("films after local delete = %s", got)
	}
}

func TestRepeatableIsolationOption(t *testing.T) {
	_, local, _ := twoPeers(t)
	res, err := local.Query(`
declare option xrpc:isolation "repeatable";
import module namespace f="films" at "http://x.example.org/film.xq";
for $i in (1, 2)
return count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")})`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "2 2" {
		t.Errorf("got %s", got)
	}
}

func TestWrapperPeerServesCalls(t *testing.T) {
	net := NewNetwork(0, 0)
	saxon, handle := NewWrapperPeer("xrpc://saxon", net)
	handle.LoadText("filmDB.xml", xmark.PaperFilmDB)
	if err := saxon.RegisterModule(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	net.Register("xrpc://saxon", saxon.Handler())

	local := NewPeer("xrpc://local", net)
	if err := local.RegisterModule(filmModule, "http://x.example.org/film.xq"); err != nil {
		t.Fatal(err)
	}
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://saxon"} {f:filmsByActor("Gerard Depardieu")}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "<name>Green Card</name>" {
		t.Errorf("wrapper peer result = %s", got)
	}
}

func TestSimulatedLatencyVisible(t *testing.T) {
	net, local, _ := func() (*Network, *Peer, *Peer) {
		net := NewNetwork(2*time.Millisecond, 0)
		y := NewPeer("xrpc://y.example.org", net)
		y.LoadDocument("filmDB.xml", xmark.PaperFilmDB)
		y.RegisterModule(filmModule, "http://x.example.org/film.xq")
		net.Register("xrpc://y.example.org", y.Handler())
		local := NewPeer("xrpc://local", net)
		local.RegisterModule(filmModule, "http://x.example.org/film.xq")
		return net, local, y
	}()
	_ = net
	start := time.Now()
	_, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}`)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestExternalVars(t *testing.T) {
	_, local, _ := twoPeers(t)
	res, err := local.QueryWithVars(`for $i in (1 to $x) return $i`,
		map[string]Sequence{"x": {Integer(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Serialize(); got != "1 2 3" {
		t.Errorf("got %s", got)
	}
}

func TestQueryError(t *testing.T) {
	_, local, _ := twoPeers(t)
	_, err := local.Query(`1 +`)
	if err == nil || !strings.Contains(err.Error(), "syntax") {
		t.Errorf("err = %v", err)
	}
	_, err = local.Query(`doc("missing.xml")`)
	if err == nil {
		t.Error("expected missing-document error")
	}
}

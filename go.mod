module xrpc

go 1.24

GO ?= go

.PHONY: build test vet race bench bench-smoke bench-cluster bench-wal fuzz-smoke memsmoke cachesmoke obssmoke crashsmoke plansmoke ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# accidental inter-test dependencies surface in CI instead of in prod.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# race catches data races in the parallel bulk-execution pipeline, the
# cluster scatter-gather coordinator, and store snapshot isolation.
race:
	$(GO) test -race -shuffle=on ./...

# bench reproduces the sequential-vs-parallel bulk execution comparison
# (BenchmarkBulkExecParallel_* in bench_test.go).
bench:
	$(GO) test -run XXX -bench 'BenchmarkBulkExecParallel' -benchtime 50x .

# bench-smoke compiles and runs every benchmark exactly once so that
# benchmark code can never rot uncompiled (it is part of ci). This
# covers the algebra microbenchmarks, the cluster scatter-gather
# benchmarks — buffered (BenchmarkClusterScatter_*) and streamed
# (BenchmarkClusterScatterStream_*, the shard-order merge writing the
# merged envelope to a sink) — BenchmarkClusterShardedSemiJoin_*, the
# writable-cluster benchmarks (BenchmarkClusterRoutedUpdate_*,
# BenchmarkClusterPrunedProbe_*), the SOAP wire-path benchmarks incl.
# the pull-decoder stream walk (BenchmarkSoapDecodeResponseStream,
# BenchmarkSoapResponseStreamWalk), and the paper-table benchmarks.
# Full sweep with peak-heap columns: xrpcbench -table cluster
# -cluster-json BENCH_cluster.json.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-cluster reproduces the scatter-gather sweep of
# `xrpcbench -table cluster` as go benchmarks.
bench-cluster:
	$(GO) test -run XXX -bench 'BenchmarkCluster' -benchtime 3x .

# fuzz-smoke gives the SOAP envelope decoders a short coverage-guided
# shake on every CI run: the buffered DOM-free decoder (FuzzDecode) and
# the incremental io.Reader decoder fed adversarially fragmented input
# (FuzzDecodeStream). Both targets share one corpus directory; patterns
# are anchored because `go test -fuzz` requires exactly one match.
# FuzzWALDecode shakes the write-ahead-log frame parser the same way
# (truncated, corrupted and torn inputs must never panic).
# Run `go test -fuzz 'FuzzDecodeStream$$' ./internal/soap` for longer
# sessions.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz 'FuzzDecode$$' -fuzztime 5s -fuzzminimizetime 5s ./internal/soap
	$(GO) test -run=NONE -fuzz 'FuzzDecodeStream$$' -fuzztime 5s -fuzzminimizetime 5s ./internal/soap
	$(GO) test -run=NONE -fuzz 'FuzzWALDecode$$' -fuzztime 5s -fuzzminimizetime 5s ./internal/wal

# memsmoke is the bounded-memory acceptance check of the streamed
# scatter-gather: under a 64 MiB GOMEMLIMIT the coordinator must merge
# a 256 MiB synthetic scan — 4x the memory cap — with its peak heap
# flat relative to the result size (O(shards × window), not O(result)).
memsmoke:
	GOMEMLIMIT=64MiB XRPC_MEMSMOKE_BYTES=268435456 \
		$(GO) test -run 'TestScatterStreamBoundedMemory' -v ./internal/cluster/

# cachesmoke is the three-tier cache acceptance check: a deployment
# with the shard response caches, the coordinator merged-result cache,
# and the compiled-plan caches all enabled must serve warm hits on both
# coordinator and shard tiers, and a routed single-shard 2PC commit
# must invalidate exactly the touched shard's entries — with every
# answer byte-identical to an unsharded single-peer execution. The full
# sweep with latency columns: xrpcbench -table cache -cache-json
# BENCH_cache.json.
cachesmoke:
	$(GO) test -run 'TestCacheSmoke' -v ./internal/cluster/

# obssmoke is the observability acceptance check: a 2-shard cached
# cluster with the full metrics/trace/slow-log layer attached, driven
# cold -> warm -> routed 2PC update -> post-write read, then scraped
# through the /metrics, /healthz and /readyz debug endpoints. Asserts
# the scatter, cache-tier and 2PC counters move at each stage and that
# one trace ID appears in both shards' slow-query logs.
obssmoke:
	$(GO) test -run 'TestObsSmoke' -v ./internal/cluster/

# bench-wal runs the durable-update acceptance pair: concurrent routed
# 2PC updates with and without a write-ahead log, the WAL on a tmpfs so
# the comparison measures the WAL code path (framing, group-commit
# coordination) rather than this machine's fsync hardware. The bar:
# WALConc within 15% of Conc. Unset XRPC_BENCH_WAL_DIR to include the
# real filesystem's flush latency instead.
bench-wal:
	XRPC_BENCH_WAL_DIR=$${XRPC_BENCH_WAL_DIR:-/dev/shm} \
		$(GO) test -run XXX -bench 'BenchmarkClusterRoutedUpdate(WAL)?Conc_P4' -benchtime 1600x .

# crashsmoke is the durability acceptance check: a live xrpcd with a
# write-ahead log is SIGKILL'd mid-update-storm and restarted with the
# same -wal-dir; every acknowledged commit must survive and a pre-crash
# committed read must come back byte-identical. XRPC_CRASHSMOKE_DIR
# points the WAL at a tmpfs (e.g. /dev/shm) so the fsync-heavy storm
# stays fast on CI runners.
crashsmoke:
	XRPC_CRASHSMOKE_DIR=$${XRPC_CRASHSMOKE_DIR:-/dev/shm} \
		$(GO) test -run 'TestXrpcdCrashRecovery' -count=1 -v ./internal/cluster/

# plansmoke is the self-driving-planner acceptance check: with ZERO
# hand-written RouteSpecs the coordinator must derive routes from the
# compiled module bodies (equality probes routed to one shard, Lex-keyed
# range scans pruned, underivable functions broadcast — never a wrong
# route), stay byte-identical to broadcast on every fixture, and fence
# its per-shard statistics on the (store version, registry generation)
# vector so commits and module re-registrations invalidate cached stats.
# The full sweep: xrpcbench -table planner -planner-json
# BENCH_planner.json.
plansmoke:
	$(GO) test -run 'TestPlanner' -v ./internal/cluster/
	$(GO) test -run 'TestDerivedRouteKeys|TestClusterWorkloadModuleIsUnderivable|TestPlannerBench' -v ./internal/bench/

ci: build vet race bench-smoke fuzz-smoke memsmoke cachesmoke obssmoke crashsmoke plansmoke

GO ?= go

.PHONY: build test vet race bench bench-smoke bench-cluster fuzz-smoke ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test (and subtest) execution order so
# accidental inter-test dependencies surface in CI instead of in prod.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# race catches data races in the parallel bulk-execution pipeline, the
# cluster scatter-gather coordinator, and store snapshot isolation.
race:
	$(GO) test -race -shuffle=on ./...

# bench reproduces the sequential-vs-parallel bulk execution comparison
# (BenchmarkBulkExecParallel_* in bench_test.go).
bench:
	$(GO) test -run XXX -bench 'BenchmarkBulkExecParallel' -benchtime 50x .

# bench-smoke compiles and runs every benchmark exactly once so that
# benchmark code can never rot uncompiled (it is part of ci). This
# covers the algebra microbenchmarks, the cluster scatter-gather
# benchmarks (BenchmarkClusterScatter_*, BenchmarkClusterShardedSemiJoin_*),
# and the writable-cluster benchmarks (BenchmarkClusterRoutedUpdate_*,
# BenchmarkClusterPrunedProbe_*; full sweep: xrpcbench -table
# cluster-update, snapshot in BENCH_cluster.json) alongside the
# paper-table benchmarks.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-cluster reproduces the scatter-gather sweep of
# `xrpcbench -table cluster` as go benchmarks.
bench-cluster:
	$(GO) test -run XXX -bench 'BenchmarkCluster' -benchtime 3x .

# fuzz-smoke gives the SOAP envelope pull-decoder a short coverage-guided
# shake on every CI run (decode must never panic; decode∘encode must be
# a fixpoint). Run `go test -fuzz=FuzzDecode ./internal/soap` for longer
# sessions.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz FuzzDecode -fuzztime 10s ./internal/soap

ci: build vet race bench-smoke fuzz-smoke

GO ?= go

.PHONY: build test vet race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race catches data races in the parallel bulk-execution pipeline.
race:
	$(GO) test -race ./...

# bench reproduces the sequential-vs-parallel bulk execution comparison
# (BenchmarkBulkExecParallel_* in bench_test.go).
bench:
	$(GO) test -run XXX -bench 'BenchmarkBulkExecParallel' -benchtime 50x .

ci: build vet race

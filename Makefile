GO ?= go

.PHONY: build test vet race bench bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race catches data races in the parallel bulk-execution pipeline.
race:
	$(GO) test -race ./...

# bench reproduces the sequential-vs-parallel bulk execution comparison
# (BenchmarkBulkExecParallel_* in bench_test.go).
bench:
	$(GO) test -run XXX -bench 'BenchmarkBulkExecParallel' -benchtime 50x .

# bench-smoke compiles and runs every benchmark exactly once so that
# benchmark code can never rot uncompiled (it is part of ci).
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build vet race bench-smoke

// Package xrpc is a Go reproduction of "XRPC: Interoperable and
// Efficient Distributed XQuery" (Ying Zhang & Peter Boncz, VLDB 2007).
//
// XRPC extends XQuery with a single construct,
//
//	execute at { Expr } { FunApp(ParamList) }
//
// which applies an XQuery function at a remote peer over a SOAP-based
// network protocol. The protocol's key feature is Bulk RPC: all
// applications of the same function arising from a for-loop travel in
// one request/response exchange, amortizing network latency. The
// extension is orthogonal to the rest of XQuery — including the XQuery
// Update Facility, whose updating functions can be called remotely with
// repeatable-read isolation and atomic distributed commit
// (WS-AtomicTransaction-style 2PC).
//
// This library contains everything the paper's system needed, built
// from scratch: an XQuery parser and tree-walking interpreter (the
// "Saxon" role), a loop-lifting relational compiler over a pre/size/level
// shredded store (the "MonetDB/XQuery + Pathfinder" role), the SOAP XRPC
// wire protocol, client and server with function cache and isolation
// manager, the §4 XRPC wrapper that lets any XQuery engine answer XRPC
// calls, and the §5 distributed query strategies (predicate pushdown,
// execution relocation, distributed semi-join).
//
// Beyond the paper, the server can drain one bulk request across CPU
// cores: Peer.SetParallelism(n) bounds a worker pool that evaluates the
// calls of a read-only Bulk RPC concurrently, while responses stay
// byte-identical to sequential execution and updating requests keep the
// paper's strictly sequential, repeatable-read semantics. Bulk RPC
// amortizes network latency; the pool amortizes per-call CPU time.
//
// # Quickstart
//
//	net := xrpc.NewNetwork(500*time.Microsecond, 0)
//
//	remote := xrpc.NewPeer("xrpc://y.example.org", net)
//	remote.LoadDocument("filmDB.xml", filmXML)
//	remote.RegisterModule(filmModule, "http://x.example.org/film.xq")
//	net.Register("xrpc://y.example.org", remote.Handler())
//
//	local := xrpc.NewPeer("xrpc://local", net)
//	local.RegisterModule(filmModule, "http://x.example.org/film.xq")
//	res, err := local.Query(`
//	  import module namespace f="films" at "http://x.example.org/film.xq";
//	  execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}`)
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md
// for the reproduction of every table and figure in the paper.
package xrpc

import (
	"time"

	"xrpc/internal/core"
	"xrpc/internal/netsim"
	"xrpc/internal/xdm"
)

// Peer is one XRPC peer: document store, module registry, server
// endpoint and query processor. See core.Peer for the full API.
type Peer = core.Peer

// Result is the outcome of one query.
type Result = core.Result

// EngineKind selects the local execution engine.
type EngineKind = core.EngineKind

// Engine kinds: the loop-lifting compiler (Bulk RPC) and the
// tree-walking interpreter (one-at-a-time RPC).
const (
	EngineLoopLifted  = core.EngineLoopLifted
	EngineInterpreted = core.EngineInterpreted
)

// Network is an in-process network with simulated latency and bandwidth,
// standing in for the paper's 1 Gb/s testbed.
type Network = netsim.Network

// Transport delivers XRPC messages to peers.
type Transport = netsim.Transport

// Handler is a peer network endpoint.
type Handler = netsim.Handler

// Sequence is an XQuery Data Model sequence; Item is one of its items;
// Node is an XML node.
type (
	Sequence = xdm.Sequence
	Item     = xdm.Item
	Node     = xdm.Node
)

// Atomic value types of the XDM.
type (
	String  = xdm.String
	Integer = xdm.Integer
	Double  = xdm.Double
	Boolean = xdm.Boolean
)

// NewNetwork creates a simulated network with the given round-trip
// latency and bandwidth in bytes/second (0 = unlimited).
func NewNetwork(rtt time.Duration, bandwidth float64) *Network {
	return netsim.NewNetwork(rtt, bandwidth)
}

// NewPeer creates a native XRPC peer (function-cached executor, the
// MonetDB/XQuery role). Register its Handler on the network to make it
// reachable.
func NewPeer(self string, transport Transport) *Peer {
	return core.NewPeer(self, transport)
}

// NewWrapperPeer creates a peer that serves XRPC through the §4 wrapper
// (the way an XRPC-incapable engine like Saxon participates): no
// function cache, documents re-parsed per request. Load documents with
// the second return value's LoadText.
func NewWrapperPeer(self string, transport Transport) (*Peer, *WrapperHandle) {
	p, w := core.NewWrapperPeer(self, transport)
	return p, &WrapperHandle{w: w}
}

// WrapperHandle configures a wrapper peer's document texts.
type WrapperHandle struct {
	w interface{ LoadText(name, text string) }
}

// LoadText registers a raw XML document with the wrapped engine.
func (h *WrapperHandle) LoadText(name, text string) { h.w.LoadText(name, text) }

// ParseXML parses an XML document into a node tree.
func ParseXML(uri, text string) (*Node, error) { return xdm.ParseDocument(uri, text) }

// Serialize renders a sequence as XML text.
func Serialize(seq Sequence) string { return xdm.SerializeSequence(seq) }

// Semijoin: the §5 distributed-query experiment. Peer A (loop-lifting
// engine) holds persons.xml; peer B (an XRPC-incapable engine fronted by
// the §4 wrapper) holds auctions.xml. Query Q7 joins them. The program
// runs all four strategies of Table 4 — data shipping, predicate
// pushdown, execution relocation, distributed semi-join — and prints
// their time and traffic, demonstrating that the semi-join (one Bulk RPC
// probing per-person) ships the least data.
package main

import (
	"fmt"
	"log"

	"xrpc/internal/strategies"
	"xrpc/internal/xmark"
)

func main() {
	cfg := xmark.PaperConfig(0.2) // 50 persons, 975 auctions, 6 matches
	fmt.Printf("XMark: %d persons at A, %d closed auctions at B, %d join matches\n\n",
		cfg.Persons, cfg.ClosedAuctions, cfg.Matches)

	env, err := strategies.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	results, err := env.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r)
	}

	// show one strategy's actual output rows
	env2, err := strategies.NewEnv(cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, seq, err := env2.RunSeq("distributed semi-join", strategies.QDistributedSemiJoin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsemi-join produced %d <result> rows; first row:\n", len(seq))
	if len(seq) > 0 {
		s := fmt.Sprint(seq[0])
		if len(s) > 200 {
			s = s[:200] + "..."
		}
		fmt.Println(s)
	}
}

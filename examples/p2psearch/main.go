// P2psearch: the abstract's claim that "by calling functions that
// themselves perform XRPC calls, complex P2P communication patterns can
// be achieved". A chain of peers each holds a shard of the film
// database; a recursive module function searches the local shard and
// forwards the query to the next peer — the originator sends ONE call
// and receives the union of all shards' matches, and learns (via the
// participating-peers piggyback) every peer that took part.
package main

import (
	"fmt"
	"log"
	"time"

	"xrpc"
	"xrpc/internal/xmark"
)

// p2p.xq: search the local shard, then forward to $next (empty string
// terminates the chain).
const p2pModule = `
module namespace p2p="p2p";
declare function p2p:search($actor as xs:string, $next as xs:string) as node()*
{
  (doc("filmDB.xml")//name[../actor=$actor],
   if ($next eq "") then ()
   else execute at {$next} {p2p:forward($actor, $next)})
};
declare function p2p:forward($actor as xs:string, $self as xs:string) as node()*
{
  p2p:search($actor, p2p:nextHop($self))
};
declare function p2p:nextHop($self as xs:string) as xs:string
{
  string((doc("ring.xml")//peer[@uri=$self]/@next)[1])
};`

func main() {
	net := xrpc.NewNetwork(500*time.Microsecond, 0)

	// four peers, each with a shard: Connery films on 1 and 3, Andrews
	// on 2, Depardieu on 4
	shards := []string{
		`<films><film><name>The Rock</name><actor>Sean Connery</actor></film></films>`,
		`<films><film><name>Sound Of Music</name><actor>Julie Andrews</actor></film></films>`,
		`<films><film><name>Goldfinger</name><actor>Sean Connery</actor></film>
		        <film><name>Dr. No</name><actor>Sean Connery</actor></film></films>`,
		`<films><film><name>Green Card</name><actor>Gerard Depardieu</actor></film></films>`,
	}
	uris := make([]string, len(shards))
	for i := range shards {
		uris[i] = fmt.Sprintf("xrpc://peer%d.example.org", i+1)
	}
	// the ring document tells each peer who its successor is
	ring := "<ring>"
	for i, uri := range uris {
		next := ""
		if i+1 < len(uris) {
			next = uris[i+1]
		}
		ring += fmt.Sprintf(`<peer uri="%s" next="%s"/>`, uri, next)
	}
	ring += "</ring>"

	var peers []*xrpc.Peer
	for i, uri := range uris {
		p := xrpc.NewPeer(uri, net)
		must(p.LoadDocument("filmDB.xml", shards[i]))
		must(p.LoadDocument("ring.xml", ring))
		must(p.RegisterModule(p2pModule, "http://x.example.org/p2p.xq"))
		net.Register(uri, p.Handler())
		peers = append(peers, p)
	}
	_ = peers

	local := xrpc.NewPeer("xrpc://local", net)
	must(local.RegisterModule(p2pModule, "http://x.example.org/p2p.xq"))
	must(local.LoadDocument("filmDB.xml", xmark.PaperFilmDB)) // unused shard
	must(local.LoadDocument("ring.xml", ring))

	// one call enters the chain at peer1; the query recursively forwards
	// through all four peers
	res, err := local.Query(`
import module namespace p2p="p2p" at "http://x.example.org/p2p.xq";
execute at {"` + uris[0] + `"} {p2p:forward("Sean Connery", "` + uris[0] + `")}`)
	must(err)
	fmt.Println("films by Sean Connery across the P2P chain:")
	for _, it := range res.Sequence {
		fmt.Println(" ", xrpc.Serialize(xrpc.Sequence{it}))
	}
	fmt.Printf("\noriginator sent %d request(s); participating peers (piggybacked):\n", res.Requests)
	for _, p := range res.Peers {
		fmt.Println(" ", p)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Updates: distributed XQUF updates over XRPC (§2.3). An updating
// function is called on two remote peers from one query; the pending
// update lists stay invisible until the originator drives
// WS-AtomicTransaction 2PC (Prepare, then Commit) across all
// participating peers. The program also demonstrates repeatable-read
// isolation: a query that reads the same peer twice sees one database
// state even while another transaction commits in between.
package main

import (
	"fmt"
	"log"
	"time"

	"xrpc"
	"xrpc/internal/xmark"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };
declare function film:countFilms() as xs:integer
{ count(doc("filmDB.xml")//film) };`

const updModule = `
module namespace u="upd";
declare updating function u:addFilm($name as xs:string, $actor as xs:string)
{ insert node <film><name>{$name}</name><actor>{$actor}</actor></film>
  into doc("filmDB.xml")/films };`

func main() {
	net := xrpc.NewNetwork(500*time.Microsecond, 0)
	peers := map[string]*xrpc.Peer{}
	for _, uri := range []string{"xrpc://y.example.org", "xrpc://z.example.org"} {
		p := xrpc.NewPeer(uri, net)
		must(p.LoadDocument("filmDB.xml", xmark.PaperFilmDB))
		must(p.RegisterModule(filmModule, "http://x.example.org/film.xq"))
		must(p.RegisterModule(updModule, "http://x.example.org/upd.xq"))
		net.Register(uri, p.Handler())
		peers[uri] = p
	}
	local := xrpc.NewPeer("xrpc://local", net)
	must(local.RegisterModule(filmModule, "http://x.example.org/film.xq"))
	must(local.RegisterModule(updModule, "http://x.example.org/upd.xq"))

	count := func() string {
		res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {f:countFilms()}`)
		must(err)
		return res.Serialize()
	}
	fmt.Println("films per peer before update:", count())

	// a distributed updating query: the same film is added on both
	// peers, committed atomically via 2PC
	res, err := local.Query(`
import module namespace u="upd" at "http://x.example.org/upd.xq";
for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
return execute at {$dst} {u:addFilm("Dr. No", "Sean Connery")}`)
	must(err)
	fmt.Printf("updating query finished: updating=%v, participants=%v\n",
		res.Updating, res.Peers)
	fmt.Println("films per peer after commit: ", count())

	// the Prepare log on each peer shows what 2PC wrote to stable
	// storage before committing
	for uri, p := range peers {
		for _, entry := range p.Server.PrepareLog() {
			fmt.Printf("%s prepare log:\n%s\n", uri, entry)
		}
	}

	// repeatable read: both reads of y inside ONE query see the same
	// state, even though a concurrent update commits in between. Here
	// the two reads travel in one Bulk RPC, which (as §3.2 notes) is
	// itself enough to guarantee one state without extra isolation cost.
	res, err = local.Query(`
declare option xrpc:isolation "repeatable";
import module namespace f="films" at "http://x.example.org/film.xq";
for $i in (1, 2)
return execute at {"xrpc://y.example.org"} {f:countFilms()}`)
	must(err)
	fmt.Println("repeatable read counts:", res.Serialize())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

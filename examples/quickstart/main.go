// Quickstart: the paper's running example (§2). Two peers share a film
// module; the local peer calls filmsByActor on the remote peer with
// execute at — first a single call (Q1), then from a for-loop (Q2),
// showing that loop-lifting folds the whole loop into one Bulk RPC.
package main

import (
	"fmt"
	"log"
	"time"

	"xrpc"
	"xrpc/internal/xmark"
)

const filmModule = `
module namespace film="films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor=$actor] };`

func main() {
	// a simulated network with 1 ms round trips (swap in an HTTP
	// transport to run across real machines — see cmd/xrpcd)
	net := xrpc.NewNetwork(time.Millisecond, 0)

	// remote peer y: stores the film database and the module
	y := xrpc.NewPeer("xrpc://y.example.org", net)
	must(y.LoadDocument("filmDB.xml", xmark.PaperFilmDB))
	must(y.RegisterModule(filmModule, "http://x.example.org/film.xq"))
	net.Register("xrpc://y.example.org", y.Handler())

	// local peer: imports the module so the compiler knows the remote
	// function's signature
	local := xrpc.NewPeer("xrpc://local", net)
	must(local.RegisterModule(filmModule, "http://x.example.org/film.xq"))

	// Q1 — one remote function application
	res, err := local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  execute at {"xrpc://y.example.org"}
  {f:filmsByActor("Sean Connery")}
} </films>`)
	must(err)
	fmt.Println("Q1:", res.Serialize())

	// Q2 — execute at inside a for-loop: one Bulk RPC carries both calls
	callsBefore := y.ServerStats().ServedCalls
	res, err = local.Query(`
import module namespace f="films" at "http://x.example.org/film.xq";
<films> {
  for $actor in ("Julie Andrews", "Sean Connery")
  let $dst := "xrpc://y.example.org"
  return execute at {$dst} {f:filmsByActor($actor)}
} </films>`)
	must(err)
	fmt.Println("Q2:", res.Serialize())
	fmt.Printf("Q2 used %d network request(s) for %d function call(s) — that is Bulk RPC\n",
		res.Requests, y.ServerStats().ServedCalls-callsBefore)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

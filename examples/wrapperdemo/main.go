// Wrapperdemo: the §4 XRPC wrapper. A peer whose engine has no native
// XRPC support (the Saxon role: no function cache, documents re-parsed
// per query) answers Bulk RPC requests through the wrapper, which
// generates an XQuery query per request (Figure 3 of the paper). The
// program sends a bulk getPerson request and prints both the generated
// query and the per-phase latencies of Table 3.
package main

import (
	"fmt"
	"log"
	"time"

	"xrpc"
	"xrpc/internal/core"
	"xrpc/internal/xmark"
)

const funcsModule = `
module namespace func="functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id=$pid]) };`

func main() {
	net := xrpc.NewNetwork(time.Millisecond, 0)

	// the wrapped peer: raw XML text, re-parsed per request
	saxon, w := core.NewWrapperPeer("xrpc://saxon.example.org", net)
	w.LoadText("xmark.xml", xmark.GeneratePersons(xmark.Config{Persons: 100, Seed: 7}))
	must(saxon.RegisterModule(funcsModule, "http://example.org/functions.xq"))
	net.Register("xrpc://saxon.example.org", saxon.Handler())

	local := xrpc.NewPeer("xrpc://local", net)
	must(local.RegisterModule(funcsModule, "http://example.org/functions.xq"))

	// a bulk of getPerson probes — the wrapper's generated query turns
	// the per-call selection into a join (§4: "Saxon is able to detect
	// the join condition and builds a hash-table")
	res, err := local.Query(`
import module namespace func="functions" at "http://example.org/functions.xq";
for $pid in ("person3", "person1", "person99", "person42")
return execute at {"xrpc://saxon.example.org"} {func:getPerson("xmark.xml", $pid)}`)
	must(err)
	fmt.Printf("bulk getPerson returned %d person nodes via %d network request(s)\n",
		len(res.Sequence), res.Requests)
	for _, it := range res.Sequence {
		n := it.(*xrpc.Node)
		id, _ := n.Attr("id")
		fmt.Printf("  %s\n", id)
	}

	fmt.Println("\nthe wrapper generated this query (Figure 3 of the paper):")
	fmt.Println(w.LastQuery)

	s := w.LastStats
	fmt.Printf("wrapper phases (Table 3): compile=%v treebuild=%v exec=%v\n",
		s.Compile, s.TreeBuild, s.Exec)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Benchmarks reproducing the paper's evaluation. Each Benchmark* maps to
// a table or figure of the paper (see EXPERIMENTS.md for the index and
// the measured-vs-paper comparison):
//
//	BenchmarkTable2_*      — Table 2 (bulk vs one-at-a-time × cache)
//	BenchmarkThroughput_*  — §3.3 throughput (request/response payloads)
//	BenchmarkTable3_*      — Table 3 (wrapper latency phases)
//	BenchmarkTable4_*      — Table 4 (distributed strategies for Q7)
//	BenchmarkFigure1_Trace — Figure 1 (Bulk RPC translation w/ tracing)
package xrpc

import (
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"xrpc/internal/bench"
	"xrpc/internal/client"
	"xrpc/internal/cluster"
	"xrpc/internal/modules"
	"xrpc/internal/netsim"
	"xrpc/internal/strategies"
	"xrpc/internal/xdm"
	"xrpc/internal/xmark"
)

// benchRTT is the simulated round-trip latency (stands in for the
// paper's 1 Gb/s LAN; see DESIGN.md substitutions).
const benchRTT = 100 * time.Microsecond

func runTable2Cell(b *testing.B, x int, bulk, warm bool) {
	b.Helper()
	env, err := bench.NewTable2Env(benchRTT)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunEchoVoid(x, bulk, warm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_OneAtATime_NoCache_X1(b *testing.B)    { runTable2Cell(b, 1, false, false) }
func BenchmarkTable2_OneAtATime_NoCache_X1000(b *testing.B) { runTable2Cell(b, 1000, false, false) }
func BenchmarkTable2_Bulk_NoCache_X1(b *testing.B)          { runTable2Cell(b, 1, true, false) }
func BenchmarkTable2_Bulk_NoCache_X1000(b *testing.B)       { runTable2Cell(b, 1000, true, false) }
func BenchmarkTable2_OneAtATime_Cache_X1(b *testing.B)      { runTable2Cell(b, 1, false, true) }
func BenchmarkTable2_OneAtATime_Cache_X1000(b *testing.B)   { runTable2Cell(b, 1000, false, true) }
func BenchmarkTable2_Bulk_Cache_X1(b *testing.B)            { runTable2Cell(b, 1, true, true) }
func BenchmarkTable2_Bulk_Cache_X1000(b *testing.B)         { runTable2Cell(b, 1000, true, true) }

func runThroughput(b *testing.B, kb int, response bool) {
	b.Helper()
	b.SetBytes(int64(kb) * 1024)
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunThroughput(kb, response); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThroughput_Request256KB(b *testing.B)  { runThroughput(b, 256, false) }
func BenchmarkThroughput_Request1MB(b *testing.B)    { runThroughput(b, 1024, false) }
func BenchmarkThroughput_Response256KB(b *testing.B) { runThroughput(b, 256, true) }
func BenchmarkThroughput_Response1MB(b *testing.B)   { runThroughput(b, 1024, true) }

func table3Config() xmark.Config {
	return xmark.Config{Persons: 200, AnnotationWords: 10, Seed: 1}
}

func runTable3(b *testing.B, fn string, x int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable3Fns([]string{fn}, []int{x}, table3Config())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 || rows[0].Fn != fn || rows[0].X != x {
			b.Fatalf("row %s x=%d missing", fn, x)
		}
	}
}

func BenchmarkTable3_EchoVoid_X1(b *testing.B)     { runTable3(b, "echoVoid", 1) }
func BenchmarkTable3_EchoVoid_X1000(b *testing.B)  { runTable3(b, "echoVoid", 1000) }
func BenchmarkTable3_GetPerson_X1(b *testing.B)    { runTable3(b, "getPerson", 1) }
func BenchmarkTable3_GetPerson_X1000(b *testing.B) { runTable3(b, "getPerson", 1000) }

// table4Config is a scaled-down version of the paper's 250-person /
// 4875-auction setup (scale by -benchtime budget; cmd/xrpcbench runs the
// full size).
func table4Config() xmark.Config {
	return xmark.Config{Persons: 50, ClosedAuctions: 500, Matches: 6, AnnotationWords: 40, Seed: 42}
}

func runTable4(b *testing.B, name, query string) {
	b.Helper()
	env, err := strategies.NewEnv(table4Config())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := env.Run(name, query)
		if err != nil {
			b.Fatal(err)
		}
		if r.Rows != 6 {
			b.Fatalf("%s returned %d rows", name, r.Rows)
		}
	}
}

func BenchmarkTable4_DataShipping(b *testing.B) {
	runTable4(b, "data shipping", strategies.QDataShipping)
}

func BenchmarkTable4_PredicatePushdown(b *testing.B) {
	runTable4(b, "predicate push-down", strategies.QPredicatePushdown)
}

func BenchmarkTable4_ExecutionRelocation(b *testing.B) {
	runTable4(b, "execution relocation", strategies.QExecutionRelocation)
}

func BenchmarkTable4_DistributedSemiJoin(b *testing.B) {
	runTable4(b, "distributed semi-join", strategies.QDistributedSemiJoin)
}

func BenchmarkFigure1_Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace, err := bench.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
		if len(trace.PerPeer) != 2 {
			b.Fatal("trace incomplete")
		}
	}
}

// BenchmarkFigure2_BulkTranslation measures the pure translation cost of
// the Figure 2 rule (compile + plan execution without network effects).
func BenchmarkFigure2_BulkTranslation(b *testing.B) {
	env, err := bench.NewTable2Env(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.RunEchoVoid(100, true, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulkExecParallel contrasts NativeExecutor worker-pool sizes
// on one read-only bulk request of 64 getPerson calls (the parallel
// Bulk RPC execution pipeline). Wall-clock speedup needs multiple
// cores; on a single-core machine all sizes degenerate to interleaved
// sequential execution.
func benchBulkExec(b *testing.B, workers int) {
	b.Helper()
	env, err := bench.NewBulkExecEnv(64, xmark.Config{Persons: 150, AnnotationWords: 10, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	// prime the function cache: measure execution, not one-time compile
	if _, _, err := env.Run(workers); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.Run(workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkExecParallel_W1(b *testing.B) { benchBulkExec(b, 1) }
func BenchmarkBulkExecParallel_W4(b *testing.B) { benchBulkExec(b, 4) }
func BenchmarkBulkExecParallel_WMax(b *testing.B) {
	benchBulkExec(b, runtime.GOMAXPROCS(0))
}

// runClusterScatter benches the scatter-gather hot path in isolation:
// deployment, baseline, and identity verification happen once outside
// the timer; each iteration is one bulk of Q_B3 probes fanned out over
// n shard peers and merged.
func runClusterScatter(b *testing.B, peers int) {
	b.Helper()
	cfg := xmark.PaperConfig(0.1)
	reg := modules.NewRegistry()
	if err := reg.Register(strategies.FunctionsB, "http://example.org/b.xq"); err != nil {
		b.Fatal(err)
	}
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"auctions.xml": xmark.GenerateAuctions(cfg)},
		cluster.DeployConfig{Shards: peers})
	if err != nil {
		b.Fatal(err)
	}
	co := dep.Coordinator()
	br := bench.ClusterProbeRequest(cfg)
	if _, err := co.Scatter(br); err != nil { // warm the function caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Scatter(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterScatter_P1(b *testing.B) { runClusterScatter(b, 1) }
func BenchmarkClusterScatter_P4(b *testing.B) { runClusterScatter(b, 4) }

// runClusterScatterStream benches the streamed wire path end to end:
// each iteration scatters the Q_B3 probe bulk over n shard peers and
// writes the merged response envelope to a discarded sink — shard
// responses are pull-decoded and re-encoded in shard order without the
// coordinator ever holding the merged result (the proxy serving path).
func runClusterScatterStream(b *testing.B, peers int) {
	b.Helper()
	cfg := xmark.PaperConfig(0.1)
	reg := modules.NewRegistry()
	if err := reg.Register(strategies.FunctionsB, "http://example.org/b.xq"); err != nil {
		b.Fatal(err)
	}
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"auctions.xml": xmark.GenerateAuctions(cfg)},
		cluster.DeployConfig{Shards: peers})
	if err != nil {
		b.Fatal(err)
	}
	co := dep.Coordinator()
	br := bench.ClusterProbeRequest(cfg)
	if err := co.ScatterStream(br, io.Discard); err != nil { // warm the function caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := co.ScatterStream(br, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterScatterStream_P1(b *testing.B) { runClusterScatterStream(b, 1) }
func BenchmarkClusterScatterStream_P4(b *testing.B) { runClusterScatterStream(b, 4) }

func BenchmarkClusterShardedSemiJoin_P4(b *testing.B) {
	env, err := strategies.NewShardedEnv(xmark.PaperConfig(0.1), 4, 1, netsim.NewNetwork(benchRTT, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := env.RunSemiJoin(); err != nil {
			b.Fatal(err)
		}
	}
}

// runClusterUpdate benches the routed write path: one updating bulk
// (8 keys spread across shards) routed shard-by-shard and committed via
// 2PC with replica PUL replication, per iteration. Deployment happens
// outside the timer; identity vs the unsharded baseline is pinned by
// bench.RunClusterUpdateBench and the cluster tests.
func runClusterUpdate(b *testing.B, peers, replication int) {
	runClusterUpdateWAL(b, peers, replication, "")
}

// runClusterUpdateWAL is runClusterUpdate with an optional WAL root:
// when set, every replica fsyncs a commit record before acking, so the
// delta against the no-WAL variant is the group-committed durability
// overhead on the routed write path.
func runClusterUpdateWAL(b *testing.B, peers, replication int, walRoot string) {
	b.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(bench.FunctionsP, "http://example.org/p.xq"); err != nil {
		b.Fatal(err)
	}
	cfg := xmark.PaperConfig(0.2)
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"persons.xml": xmark.GeneratePersons(cfg)},
		cluster.DeployConfig{Shards: peers, Replication: replication,
			Routes: bench.PersonRoutes(), WALRoot: walRoot})
	if err != nil {
		b.Fatal(err)
	}
	if walRoot != "" {
		defer dep.Close()
	}
	co := dep.Coordinator()
	upd := &client.BulkRequest{
		ModuleURI: "functions_p", AtHint: "http://example.org/p.xq",
		Func: "setCity", Arity: 2, Updating: true,
	}
	for i := 0; i < 8; i++ {
		upd.Calls = append(upd.Calls, []xdm.Sequence{
			{xdm.String(xmark.PersonID(i * cfg.Persons / 8))}, {xdm.String("Benchtown")}})
	}
	if _, err := co.Update(upd); err != nil { // warm the function caches
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Update(upd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRoutedUpdate_P4(b *testing.B)   { runClusterUpdate(b, 4, 1) }
func BenchmarkClusterRoutedUpdate_P4R2(b *testing.B) { runClusterUpdate(b, 4, 2) }

// BenchmarkClusterRoutedUpdateWAL_P4 is the durable variant of
// BenchmarkClusterRoutedUpdate_P4: same routed 2PC write, each shard
// fsyncing its commit record before acking. Sequential updates cannot
// share flushes, so this measures the worst case — one uncontended
// fsync round per commit; the Conc pair below measures the group-commit
// regime the 15%-of-baseline acceptance bar is set against.
func BenchmarkClusterRoutedUpdateWAL_P4(b *testing.B) {
	runClusterUpdateWAL(b, 4, 1, b.TempDir())
}

// runClusterUpdateConc drives independent single-key routed updates
// from 64×GOMAXPROCS goroutines — the concurrent-writer regime where
// the WAL's group commit batches every transaction in flight at a
// shard into one fsync, and the fsync wait (pure I/O) overlaps other
// transactions' CPU work. Comparing the WALConc and Conc variants
// isolates the amortized durability overhead per committed update;
// the high parallelism matters on small runners (at GOMAXPROCS=1,
// RunParallel alone would drive one update at a time and every commit
// would pay a solo, unamortized flush).
func runClusterUpdateConc(b *testing.B, peers, replication int, walRoot string) {
	b.Helper()
	reg := modules.NewRegistry()
	if err := reg.Register(bench.FunctionsP, "http://example.org/p.xq"); err != nil {
		b.Fatal(err)
	}
	cfg := xmark.PaperConfig(0.2)
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"persons.xml": xmark.GeneratePersons(cfg)},
		cluster.DeployConfig{Shards: peers, Replication: replication,
			Routes: bench.PersonRoutes(), WALRoot: walRoot})
	if err != nil {
		b.Fatal(err)
	}
	if walRoot != "" {
		defer dep.Close()
	}
	co := dep.Coordinator()
	update := func(i int) error {
		_, err := co.Update(&client.BulkRequest{
			ModuleURI: "functions_p", AtHint: "http://example.org/p.xq",
			Func: "setCity", Arity: 2, Updating: true,
			Calls: [][]xdm.Sequence{
				{{xdm.String(xmark.PersonID(i % cfg.Persons))}, {xdm.String("Benchtown")}}},
		})
		return err
	}
	if err := update(0); err != nil { // warm the function caches
		b.Fatal(err)
	}
	var ctr atomic.Int64
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := update(int(ctr.Add(1))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkClusterRoutedUpdateConc_P4(b *testing.B) { runClusterUpdateConc(b, 4, 1, "") }
func BenchmarkClusterRoutedUpdateWALConc_P4(b *testing.B) {
	runClusterUpdateConc(b, 4, 1, benchWALDir(b))
}

// benchWALDir places the benchmark WAL under XRPC_BENCH_WAL_DIR when
// set (a tmpfs like /dev/shm in CI — measuring the WAL code path:
// framing, group-commit coordination, the extra wire round) and under
// b.TempDir() otherwise (adding this filesystem's real fsync latency,
// whatever a flush costs here). The durability acceptance bar — WALConc
// within 15% of Conc — is defined on the tmpfs configuration, because
// the repo-filesystem number measures the host's flush hardware more
// than it measures this code; both numbers are worth watching.
func benchWALDir(b *testing.B) string {
	b.Helper()
	root := os.Getenv("XRPC_BENCH_WAL_DIR")
	if root == "" {
		return b.TempDir()
	}
	dir, err := os.MkdirTemp(root, "xrpc-bench-wal-")
	if err != nil {
		return b.TempDir() // the tmpfs path may not exist on this platform
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}

// BenchmarkClusterPrunedProbe_P4 benches the predicate-pruned read
// path: one single-key probe that range metadata routes to exactly one
// of 4 shards.
func BenchmarkClusterPrunedProbe_P4(b *testing.B) {
	reg := modules.NewRegistry()
	if err := reg.Register(bench.FunctionsP, "http://example.org/p.xq"); err != nil {
		b.Fatal(err)
	}
	cfg := xmark.PaperConfig(0.2)
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"persons.xml": xmark.GeneratePersons(cfg)},
		cluster.DeployConfig{Shards: 4, Routes: bench.PersonRoutes()})
	if err != nil {
		b.Fatal(err)
	}
	co := dep.Coordinator()
	probe := &client.BulkRequest{
		ModuleURI: "functions_p", AtHint: "http://example.org/p.xq",
		Func: "getPerson", Arity: 1,
		Calls: [][]xdm.Sequence{{{xdm.String(xmark.PersonID(cfg.Persons / 2))}}},
	}
	if _, err := co.Scatter(probe); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Scatter(probe); err != nil {
			b.Fatal(err)
		}
	}
}

// runClusterCachedScatter benches the warm three-tier read path: the
// deployment enables the shard response caches and the coordinator
// merged-result cache, one untimed scatter populates them, and each
// iteration is then a version-revalidated cache hit (one shardInfo
// probe round, merged result from coordinator memory). Contrast with
// BenchmarkClusterScatter_*, which re-executes every probe per
// iteration.
func runClusterCachedScatter(b *testing.B, peers int) {
	b.Helper()
	cfg := xmark.PaperConfig(0.1)
	reg := modules.NewRegistry()
	if err := reg.Register(strategies.FunctionsB, "http://example.org/b.xq"); err != nil {
		b.Fatal(err)
	}
	net := netsim.NewNetwork(0, 0)
	dep, err := cluster.Deploy(net, reg,
		map[string]string{"auctions.xml": xmark.GenerateAuctions(cfg)},
		cluster.DeployConfig{Shards: peers, RespCacheBytes: 32 << 20, ResultCacheBytes: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	co := dep.Coordinator()
	br := bench.ClusterProbeRequest(cfg)
	if _, err := co.Scatter(br); err != nil { // populate every tier
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Scatter(br); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterCachedScatter_P1(b *testing.B) { runClusterCachedScatter(b, 1) }
func BenchmarkClusterCachedScatter_P4(b *testing.B) { runClusterCachedScatter(b, 4) }
